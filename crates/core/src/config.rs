//! Simulator configuration: the paper's §4.1 machine, with every knob the
//! evaluation sweeps exposed.

use sqip_mem::HierarchyConfig;
use sqip_predictors::{BranchConfig, DdpConfig, FspConfig, StoreSetsConfig};

use crate::error::SimError;
use crate::policy::{DesignCaps, DesignRegistry};

use serde::{Deserialize, Serialize};

/// A store-queue design *name*.
///
/// `SqDesign` is a thin, copyable, serializable handle that resolves
/// through the [`DesignRegistry`] to a
/// [`ForwardingPolicy`](crate::ForwardingPolicy) — the object that owns
/// the design's predictor state and pipeline decisions. The seven designs
/// of the paper's Figure 4 are pre-registered (the associated constants
/// below), as is the `indexed-5-fwd+dly` extension; custom designs
/// register under new names via [`DesignRegistry::register`] and then
/// work everywhere a builtin does.
///
/// Names round-trip through [`std::fmt::Display`] / [`std::str::FromStr`]
/// (so CLI flags and JSON results can name designs), and deserialization
/// additionally accepts the legacy enum-variant spellings
/// (`"IdealOracle"`, …) that pre-registry JSON results used.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SqDesign(&'static str);

#[allow(non_upper_case_globals)] // legacy enum-variant spellings, kept API-compatible
impl SqDesign {
    /// Associative SQ, 3-cycle (= data cache) latency, *oracle* load
    /// scheduling: each load waits exactly for its architectural producing
    /// store and never violates. Figure 4's denominator.
    pub const IdealOracle: SqDesign = SqDesign("ideal-oracle");
    /// Associative SQ, 3-cycle latency, **original** Store Sets (SSIT/LFST)
    /// scheduling — Table 1's "preceding proposals" configuration. Differs
    /// from the reformulation in representing unbounded store dependences
    /// per load while serialising all stores within a set.
    pub const Associative3StoreSets: SqDesign = SqDesign("associative-3-storesets");
    /// Associative SQ, 3-cycle latency, reformulated Store Sets (FSP/SAT)
    /// scheduling. Figure 4's `associative-3`.
    pub const Associative3: SqDesign = SqDesign("associative-3");
    /// Associative SQ, 5-cycle latency; the scheduler optimistically
    /// assumes 3-cycle loads, so forwarded loads trigger dependent
    /// replays. Top (striped) part of Figure 4's `associative-5` stack.
    pub const Associative5Replay: SqDesign = SqDesign("associative-5-replay");
    /// Associative SQ, 5-cycle latency; the FSP predicts which loads will
    /// forward, and their dependents are scheduled at SQ latency, avoiding
    /// most replays. Bottom part of Figure 4's `associative-5` stack.
    pub const Associative5FwdPred: SqDesign = SqDesign("associative-5-fwdpred");
    /// The paper's speculative indexed SQ, 3-cycle latency, forwarding
    /// index prediction only (`indexed-3-fwd`).
    pub const Indexed3Fwd: SqDesign = SqDesign("indexed-3-fwd");
    /// The paper's full design: indexed SQ with forwarding *and* delay
    /// index prediction (`indexed-3-fwd+dly`).
    pub const Indexed3FwdDly: SqDesign = SqDesign("indexed-3-fwd+dly");
}

impl SqDesign {
    /// The paper's seven designs, in Figure 4's left-to-right order.
    ///
    /// Registry extensions (e.g. `indexed-5-fwd+dly`) are deliberately
    /// not part of this roster: it names exactly the Figure 4 bars. Use
    /// [`DesignRegistry::names`] for the full open roster.
    pub const ALL: [SqDesign; 7] = [
        SqDesign::IdealOracle,
        SqDesign::Associative3StoreSets,
        SqDesign::Associative3,
        SqDesign::Associative5Replay,
        SqDesign::Associative5FwdPred,
        SqDesign::Indexed3Fwd,
        SqDesign::Indexed3FwdDly,
    ];

    /// Wraps an interned name (registry internal; the public construction
    /// paths are the constants, [`std::str::FromStr`] and
    /// [`DesignRegistry::register`]).
    pub(crate) const fn from_static(name: &'static str) -> SqDesign {
        SqDesign(name)
    }

    /// The design's registered name (also its [`std::fmt::Display`] and
    /// Figure 4 label).
    #[must_use]
    pub fn name(self) -> &'static str {
        self.0
    }

    /// The label used in Figure 4 and throughout the harness output.
    #[must_use]
    pub fn label(self) -> &'static str {
        self.0
    }

    /// The design's registered capabilities.
    ///
    /// This and the convenience predicates below resolve through
    /// [`DesignRegistry::global`]. Handles created in an isolated
    /// [`DesignRegistry::empty`] registry are not visible there — query
    /// that registry's [`DesignRegistry::caps`] directly instead.
    ///
    /// # Panics
    ///
    /// Panics if the design is not in the global registry (i.e. the
    /// handle came from an isolated registry).
    #[must_use]
    pub fn caps(self) -> DesignCaps {
        DesignRegistry::global()
            .caps(self)
            .unwrap_or_else(|| panic!("design `{}` is not registered", self.0))
    }

    /// Whether loads access the SQ by predicted index (vs associatively).
    #[must_use]
    pub fn is_indexed(self) -> bool {
        self.caps().indexed
    }

    /// Whether the delay index predictor (DDP) is active.
    #[must_use]
    pub fn uses_delay(self) -> bool {
        self.caps().delay
    }

    /// Whether load scheduling is oracle (no dependence predictor).
    #[must_use]
    pub fn is_oracle(self) -> bool {
        self.caps().oracle
    }

    /// Whether scheduling uses the original SSIT/LFST Store Sets predictor
    /// instead of the paper's FSP/SAT reformulation.
    #[must_use]
    pub fn uses_original_store_sets(self) -> bool {
        self.caps().original_store_sets
    }

    /// SQ access latency in cycles for forwarded loads.
    #[must_use]
    pub fn sq_latency(self) -> u64 {
        self.caps().sq_latency
    }

    /// Whether dependents of predicted-forwarding loads are scheduled at
    /// SQ latency (the "forwarding prediction" latency hybrid of §4.2).
    #[must_use]
    pub fn predicts_forward_latency(self) -> bool {
        self.caps().fwd_latency_pred
    }
}

impl std::fmt::Display for SqDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::fmt::Debug for SqDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// The pre-registry enum-variant spellings, accepted by
/// [`std::str::FromStr`] and deserialization for JSON compatibility.
/// Reserved: the registry rejects registrations under these names, since
/// name resolution would silently redirect them to the builtins.
pub(crate) const LEGACY_ALIASES: [(&str, &str); 7] = [
    ("IdealOracle", "ideal-oracle"),
    ("Associative3StoreSets", "associative-3-storesets"),
    ("Associative3", "associative-3"),
    ("Associative5Replay", "associative-5-replay"),
    ("Associative5FwdPred", "associative-5-fwdpred"),
    ("Indexed3Fwd", "indexed-3-fwd"),
    ("Indexed3FwdDly", "indexed-3-fwd+dly"),
];

/// A design name that is not in the [`DesignRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDesignError {
    name: String,
}

impl ParseDesignError {
    /// The unresolvable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Display for ParseDesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown store-queue design `{}` (registered: {})",
            self.name,
            DesignRegistry::global().names().join(", ")
        )
    }
}

impl std::error::Error for ParseDesignError {}

impl std::str::FromStr for SqDesign {
    type Err = ParseDesignError;

    /// The inverse of [`std::fmt::Display`]: resolves a design name (or a
    /// legacy enum-variant spelling) through the global registry.
    fn from_str(s: &str) -> Result<SqDesign, ParseDesignError> {
        let canonical = LEGACY_ALIASES
            .iter()
            .find(|(alias, _)| *alias == s)
            .map_or(s, |&(_, name)| name);
        DesignRegistry::global()
            .lookup(canonical)
            .ok_or_else(|| ParseDesignError {
                name: s.to_string(),
            })
    }
}

impl Serialize for SqDesign {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.0.to_string())
    }
}

impl Deserialize for SqDesign {
    fn deserialize(value: &serde::Value) -> Result<SqDesign, serde::Error> {
        match value {
            serde::Value::Str(s) => s
                .parse()
                .map_err(|e: ParseDesignError| serde::Error::custom(e.to_string())),
            _ => Err(serde::Error::custom("expected a design name string")),
        }
    }
}

/// Which simulation engine drives the run.
///
/// Both engines implement the *same* machine — every design decision,
/// latency and predictor update is identical — and are pinned to each
/// other by differential tests (bit-identical [`SimStats`] on random
/// programs × designs × configurations). They differ only in how the
/// simulation loop finds work:
///
/// * [`Engine::Event`] (the default) is the production engine: in-flight
///   state lives in ring-indexed slabs with free-list-backed waiter
///   lists, wakeups and latencies sit in an event wheel
///   ([`EventWheel`](crate::engine::EventWheel)), idle cycles (no
///   wakeups due, frontend stalled, no commit-eligible head) are skipped
///   in O(1), and derived statistics are flushed per *active* cycle
///   rather than per simulated cycle.
/// * [`Engine::Reference`] is the straightforward cycle stepper the
///   event engine was derived from, kept alive as the differential
///   -testing baseline and for perf comparisons (`perf` bin). It scans
///   its structures every simulated cycle.
///
/// [`SimStats`]: crate::SimStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Engine {
    /// Event-driven engine with idle-cycle skip-ahead (production).
    #[default]
    Event,
    /// Straightforward per-cycle stepper (differential baseline).
    Reference,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Event => "event",
            Engine::Reference => "reference",
        })
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        match s {
            "event" | "Event" => Ok(Engine::Event),
            "reference" | "Reference" => Ok(Engine::Reference),
            other => Err(format!(
                "unknown engine `{other}` (expected `event` or `reference`)"
            )),
        }
    }
}

/// How memory-ordering violations (and forwarding mis-speculation) are
/// detected — the two schemes §2 of the paper contrasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderingMode {
    /// SVW-filtered in-order pre-commit load re-execution (the paper's
    /// mechanism, required by the indexed SQ designs: it detects *value*
    /// errors, including forwarding from the wrong SQ entry).
    SvwReexecution,
    /// A conventional associative load queue: each executing store searches
    /// the LQ for younger already-executed loads to an overlapping address
    /// and flushes on a match. Timing-precise but blind to wrong-entry
    /// forwarding, so it is only sound for associative SQ designs.
    LqCam,
}

/// Per-class execution latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatencies {
    /// Simple integer ALU.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// FP add/sub.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide.
    pub fp_div: u64,
    /// Branch resolution.
    pub branch: u64,
}

impl Default for OpLatencies {
    fn default() -> OpLatencies {
        OpLatencies {
            int_alu: 1,
            int_mul: 3,
            fp_add: 4,
            fp_mul: 4,
            fp_div: 12,
            branch: 1,
        }
    }
}

/// Per-cycle issue-port limits (the paper's mix: 6 int, 4 FP, 1 branch,
/// 2 store, 2 load, 8 total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssueMix {
    /// Total instructions issued per cycle.
    pub total: usize,
    /// Integer ops (ALU + multiply).
    pub int: usize,
    /// FP ops.
    pub fp: usize,
    /// Branches.
    pub branch: usize,
    /// Loads.
    pub load: usize,
    /// Stores.
    pub store: usize,
}

impl Default for IssueMix {
    fn default() -> IssueMix {
        IssueMix {
            total: 8,
            int: 6,
            fp: 4,
            branch: 1,
            load: 2,
            store: 2,
        }
    }
}

/// The full machine configuration (defaults reproduce §4.1).
///
/// Deserialization is hand-written (rather than derived) so that the
/// [`Engine`] field — added after the first serialized sweeps — defaults
/// to [`Engine::Event`] when absent, keeping pre-existing JSON results
/// loadable.
#[derive(Debug, Clone, Serialize)]
pub struct SimConfig {
    /// Store-queue design under test.
    pub design: SqDesign,
    /// Simulation engine (identical results either way; see [`Engine`]).
    pub engine: Engine,
    /// Memory-ordering detection scheme.
    pub ordering: OrderingMode,
    /// Reorder buffer entries (512).
    pub rob_size: usize,
    /// Issue queue entries (300).
    pub iq_size: usize,
    /// Load queue entries (128).
    pub lq_size: usize,
    /// Store queue entries (64).
    pub sq_size: usize,
    /// Fetch width (12, past a single taken branch).
    pub fetch_width: usize,
    /// Decode/rename width (8).
    pub rename_width: usize,
    /// Commit width (8).
    pub commit_width: usize,
    /// Issue-port mix.
    pub issue: IssueMix,
    /// Cycles from fetch to rename-eligible (3 fetch + 2 decode + 2 rename).
    pub front_latency: u64,
    /// Cycles from issue selection to execute (2 schedule + 3 register read).
    pub issue_to_exec: u64,
    /// Pipeline depth between completion and commit-eligibility
    /// (1 SVW + 3 re-execute stages).
    pub post_exec_depth: u64,
    /// Re-execution data-cache ports (re-executions per cycle).
    pub reexec_ports: usize,
    /// Execution latencies.
    pub latencies: OpLatencies,
    /// Memory hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor.
    pub branch: BranchConfig,
    /// Forwarding store predictor.
    pub fsp: FspConfig,
    /// Delay distance predictor.
    pub ddp: DdpConfig,
    /// Original Store Sets predictor (used only by
    /// [`SqDesign::Associative3StoreSets`]).
    pub store_sets: StoreSetsConfig,
    /// Store alias table entries (256).
    pub sat_entries: usize,
    /// Store sequence Bloom filter entries (2K, byte granularity).
    pub ssbf_entries: usize,
    /// Store PC table entries (2K, byte granularity).
    pub spct_entries: usize,
    /// Hardware SSN width in bits (16): renaming a store whose SSN wraps
    /// drains the pipeline and clears all SSN-holding structures.
    pub ssn_bits: u32,
}

impl SimConfig {
    /// The paper's configuration with the given SQ design.
    #[must_use]
    pub fn with_design(design: SqDesign) -> SimConfig {
        let ddp = DdpConfig {
            max_distance: 64, // = SQ size
            ..DdpConfig::default()
        };
        SimConfig {
            design,
            engine: Engine::default(),
            ordering: OrderingMode::SvwReexecution,
            rob_size: 512,
            iq_size: 300,
            lq_size: 128,
            sq_size: 64,
            fetch_width: 12,
            rename_width: 8,
            commit_width: 8,
            issue: IssueMix::default(),
            front_latency: 7,
            issue_to_exec: 5,
            post_exec_depth: 4,
            reexec_ports: 2,
            latencies: OpLatencies::default(),
            hierarchy: HierarchyConfig::default(),
            branch: BranchConfig::default(),
            fsp: FspConfig::default(),
            ddp,
            store_sets: StoreSetsConfig::default(),
            sat_entries: 256,
            ssbf_entries: 2048,
            spct_entries: 2048,
            ssn_bits: 16,
        }
    }

    /// Validates cross-structure invariants.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the configuration is inconsistent
    /// (e.g. DDP max distance differing from SQ size, zero widths).
    pub fn try_validate(&self) -> Result<(), SimError> {
        let invalid = |msg: &str| Err(SimError::InvalidConfig(msg.to_string()));
        let Some(caps) = DesignRegistry::global().caps(self.design) else {
            return invalid(&format!(
                "store-queue design `{}` is not registered",
                self.design
            ));
        };
        if self.rob_size == 0 || self.sq_size == 0 || self.lq_size == 0 {
            return invalid("window structures (ROB/SQ/LQ) must be non-empty");
        }
        if self.fetch_width == 0 || self.rename_width == 0 || self.commit_width == 0 {
            return invalid("pipeline widths must be non-zero");
        }
        if self.ddp.max_distance as usize != self.sq_size {
            return invalid(
                "DDP distances are bounded by SQ size (\u{2308}log2(SQ.size)\u{2309} bits)",
            );
        }
        if self.ssn_bits < 8 {
            return invalid("SSN width must cover the SQ");
        }
        if self.ordering == OrderingMode::LqCam && caps.indexed {
            return invalid(
                "an LQ CAM cannot detect wrong-entry forwarding; indexed designs \
                 require value-based re-execution (the paper's §2 argument)",
            );
        }
        Ok(())
    }

    /// Validates cross-structure invariants, panicking on violations.
    ///
    /// This is the legacy convenience wrapper around
    /// [`SimConfig::try_validate`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (e.g. DDP max distance
    /// differing from SQ size, zero widths).
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::with_design(SqDesign::Indexed3FwdDly)
    }
}

impl Deserialize for SimConfig {
    fn deserialize(value: &serde::Value) -> Result<SimConfig, serde::Error> {
        Ok(SimConfig {
            design: serde::field(value, "design")?,
            // Absent in JSON produced before the engine axis existed.
            engine: match value.get("engine") {
                Some(v) => Engine::deserialize(v)?,
                None => Engine::default(),
            },
            ordering: serde::field(value, "ordering")?,
            rob_size: serde::field(value, "rob_size")?,
            iq_size: serde::field(value, "iq_size")?,
            lq_size: serde::field(value, "lq_size")?,
            sq_size: serde::field(value, "sq_size")?,
            fetch_width: serde::field(value, "fetch_width")?,
            rename_width: serde::field(value, "rename_width")?,
            commit_width: serde::field(value, "commit_width")?,
            issue: serde::field(value, "issue")?,
            front_latency: serde::field(value, "front_latency")?,
            issue_to_exec: serde::field(value, "issue_to_exec")?,
            post_exec_depth: serde::field(value, "post_exec_depth")?,
            reexec_ports: serde::field(value, "reexec_ports")?,
            latencies: serde::field(value, "latencies")?,
            hierarchy: serde::field(value, "hierarchy")?,
            branch: serde::field(value, "branch")?,
            fsp: serde::field(value, "fsp")?,
            ddp: serde::field(value, "ddp")?,
            store_sets: serde::field(value, "store_sets")?,
            sat_entries: serde::field(value, "sat_entries")?,
            ssbf_entries: serde::field(value, "ssbf_entries")?,
            spct_entries: serde::field(value, "spct_entries")?,
            ssn_bits: serde::field(value, "ssn_bits")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_properties() {
        assert!(SqDesign::Indexed3FwdDly.is_indexed());
        assert!(SqDesign::Indexed3FwdDly.uses_delay());
        assert!(!SqDesign::Indexed3Fwd.uses_delay());
        assert!(!SqDesign::Associative3.is_indexed());
        assert_eq!(SqDesign::Associative5Replay.sq_latency(), 5);
        assert_eq!(SqDesign::Indexed3Fwd.sq_latency(), 3);
        assert!(SqDesign::IdealOracle.is_oracle());
        assert!(SqDesign::Associative5FwdPred.predicts_forward_latency());
    }

    #[test]
    fn default_config_is_paper_machine() {
        let c = SimConfig::default();
        c.validate();
        assert_eq!(c.rob_size, 512);
        assert_eq!(c.iq_size, 300);
        assert_eq!(c.lq_size, 128);
        assert_eq!(c.sq_size, 64);
        assert_eq!(c.fetch_width, 12);
        assert_eq!(c.issue.total, 8);
        assert_eq!(c.fsp.entries, 4096);
        assert_eq!(c.ssbf_entries, 2048);
        assert_eq!(c.ssn_bits, 16);
    }

    #[test]
    #[should_panic(expected = "bounded by SQ size")]
    fn validate_catches_ddp_sq_mismatch() {
        let c = SimConfig {
            sq_size: 32,
            ..SimConfig::default()
        };
        c.validate();
    }

    #[test]
    fn design_names_round_trip_through_fromstr() {
        // FromStr is the inverse of Display over the whole builtin roster.
        for design in SqDesign::ALL {
            let parsed: SqDesign = design.to_string().parse().unwrap();
            assert_eq!(parsed, design);
        }
        // Registry extensions parse too; unknown names do not.
        let ext: SqDesign = "indexed-5-fwd+dly".parse().unwrap();
        assert_eq!(ext.sq_latency(), 5);
        assert!(ext.is_indexed());
        let err = "no-such-design".parse::<SqDesign>().unwrap_err();
        assert!(err.to_string().contains("no-such-design"), "{err}");
        assert!(err.to_string().contains("indexed-3-fwd+dly"), "{err}");
    }

    #[test]
    fn legacy_variant_spellings_still_parse() {
        assert_eq!(
            "IdealOracle".parse::<SqDesign>().unwrap(),
            SqDesign::IdealOracle
        );
        assert_eq!(
            "Indexed3FwdDly".parse::<SqDesign>().unwrap(),
            SqDesign::Indexed3FwdDly
        );
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            SqDesign::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), SqDesign::ALL.len());
    }

    #[test]
    fn original_store_sets_is_an_associative_design() {
        let d = SqDesign::Associative3StoreSets;
        assert!(d.uses_original_store_sets());
        assert!(!d.is_indexed());
        assert!(!d.uses_delay());
        assert_eq!(d.sq_latency(), 3);
    }

    #[test]
    fn lq_cam_is_valid_for_associative_designs() {
        let mut c = SimConfig::with_design(SqDesign::Associative3);
        c.ordering = OrderingMode::LqCam;
        c.validate(); // must not panic
    }

    #[test]
    #[should_panic(expected = "wrong-entry forwarding")]
    fn lq_cam_is_rejected_for_indexed_designs() {
        let mut c = SimConfig::with_design(SqDesign::Indexed3Fwd);
        c.ordering = OrderingMode::LqCam;
        c.validate();
    }
}
