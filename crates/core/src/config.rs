//! Simulator configuration: the paper's §4.1 machine, with every knob the
//! evaluation sweeps exposed.

use sqip_mem::HierarchyConfig;
use sqip_predictors::{BranchConfig, DdpConfig, FspConfig, StoreSetsConfig};

use crate::error::SimError;

use serde::{Deserialize, Serialize};

/// Which store-queue design (and load scheduling discipline) the processor
/// uses — the five configurations of Figure 4 plus the idealised baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SqDesign {
    /// Associative SQ, 3-cycle (= data cache) latency, *oracle* load
    /// scheduling: each load waits exactly for its architectural producing
    /// store and never violates. Figure 4's denominator.
    IdealOracle,
    /// Associative SQ, 3-cycle latency, **original** Store Sets (SSIT/LFST)
    /// scheduling — Table 1's "preceding proposals" configuration. Differs
    /// from the reformulation in representing unbounded store dependences
    /// per load while serialising all stores within a set.
    Associative3StoreSets,
    /// Associative SQ, 3-cycle latency, reformulated Store Sets (FSP/SAT)
    /// scheduling. Figure 4's `associative-3`.
    Associative3,
    /// Associative SQ, 5-cycle latency; the scheduler optimistically
    /// assumes 3-cycle loads, so forwarded loads trigger dependent
    /// replays. Top (striped) part of Figure 4's `associative-5` stack.
    Associative5Replay,
    /// Associative SQ, 5-cycle latency; the FSP predicts which loads will
    /// forward, and their dependents are scheduled at SQ latency, avoiding
    /// most replays. Bottom part of Figure 4's `associative-5` stack.
    Associative5FwdPred,
    /// The paper's speculative indexed SQ, 3-cycle latency, forwarding
    /// index prediction only (`indexed-3-fwd`).
    Indexed3Fwd,
    /// The paper's full design: indexed SQ with forwarding *and* delay
    /// index prediction (`indexed-3-fwd+dly`).
    Indexed3FwdDly,
}

impl SqDesign {
    /// All designs, in Figure 4's left-to-right order.
    pub const ALL: [SqDesign; 7] = [
        SqDesign::IdealOracle,
        SqDesign::Associative3StoreSets,
        SqDesign::Associative3,
        SqDesign::Associative5Replay,
        SqDesign::Associative5FwdPred,
        SqDesign::Indexed3Fwd,
        SqDesign::Indexed3FwdDly,
    ];

    /// Whether loads access the SQ by predicted index (vs associatively).
    #[must_use]
    pub fn is_indexed(self) -> bool {
        matches!(self, SqDesign::Indexed3Fwd | SqDesign::Indexed3FwdDly)
    }

    /// Whether the delay index predictor (DDP) is active.
    #[must_use]
    pub fn uses_delay(self) -> bool {
        self == SqDesign::Indexed3FwdDly
    }

    /// Whether load scheduling is oracle (no dependence predictor).
    #[must_use]
    pub fn is_oracle(self) -> bool {
        self == SqDesign::IdealOracle
    }

    /// Whether scheduling uses the original SSIT/LFST Store Sets predictor
    /// instead of the paper's FSP/SAT reformulation.
    #[must_use]
    pub fn uses_original_store_sets(self) -> bool {
        self == SqDesign::Associative3StoreSets
    }

    /// SQ access latency in cycles for forwarded loads.
    #[must_use]
    pub fn sq_latency(self) -> u64 {
        match self {
            SqDesign::Associative5Replay | SqDesign::Associative5FwdPred => 5,
            _ => 3,
        }
    }

    /// Whether dependents of predicted-forwarding loads are scheduled at
    /// SQ latency (the "forwarding prediction" latency hybrid of §4.2).
    #[must_use]
    pub fn predicts_forward_latency(self) -> bool {
        self == SqDesign::Associative5FwdPred
    }

    /// The label used in Figure 4 and throughout the harness output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SqDesign::IdealOracle => "ideal-oracle",
            SqDesign::Associative3StoreSets => "associative-3-storesets",
            SqDesign::Associative3 => "associative-3",
            SqDesign::Associative5Replay => "associative-5-replay",
            SqDesign::Associative5FwdPred => "associative-5-fwdpred",
            SqDesign::Indexed3Fwd => "indexed-3-fwd",
            SqDesign::Indexed3FwdDly => "indexed-3-fwd+dly",
        }
    }
}

impl std::fmt::Display for SqDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How memory-ordering violations (and forwarding mis-speculation) are
/// detected — the two schemes §2 of the paper contrasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderingMode {
    /// SVW-filtered in-order pre-commit load re-execution (the paper's
    /// mechanism, required by the indexed SQ designs: it detects *value*
    /// errors, including forwarding from the wrong SQ entry).
    SvwReexecution,
    /// A conventional associative load queue: each executing store searches
    /// the LQ for younger already-executed loads to an overlapping address
    /// and flushes on a match. Timing-precise but blind to wrong-entry
    /// forwarding, so it is only sound for associative SQ designs.
    LqCam,
}

/// Per-class execution latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatencies {
    /// Simple integer ALU.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// FP add/sub.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide.
    pub fp_div: u64,
    /// Branch resolution.
    pub branch: u64,
}

impl Default for OpLatencies {
    fn default() -> OpLatencies {
        OpLatencies {
            int_alu: 1,
            int_mul: 3,
            fp_add: 4,
            fp_mul: 4,
            fp_div: 12,
            branch: 1,
        }
    }
}

/// Per-cycle issue-port limits (the paper's mix: 6 int, 4 FP, 1 branch,
/// 2 store, 2 load, 8 total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssueMix {
    /// Total instructions issued per cycle.
    pub total: usize,
    /// Integer ops (ALU + multiply).
    pub int: usize,
    /// FP ops.
    pub fp: usize,
    /// Branches.
    pub branch: usize,
    /// Loads.
    pub load: usize,
    /// Stores.
    pub store: usize,
}

impl Default for IssueMix {
    fn default() -> IssueMix {
        IssueMix {
            total: 8,
            int: 6,
            fp: 4,
            branch: 1,
            load: 2,
            store: 2,
        }
    }
}

/// The full machine configuration (defaults reproduce §4.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Store-queue design under test.
    pub design: SqDesign,
    /// Memory-ordering detection scheme.
    pub ordering: OrderingMode,
    /// Reorder buffer entries (512).
    pub rob_size: usize,
    /// Issue queue entries (300).
    pub iq_size: usize,
    /// Load queue entries (128).
    pub lq_size: usize,
    /// Store queue entries (64).
    pub sq_size: usize,
    /// Fetch width (12, past a single taken branch).
    pub fetch_width: usize,
    /// Decode/rename width (8).
    pub rename_width: usize,
    /// Commit width (8).
    pub commit_width: usize,
    /// Issue-port mix.
    pub issue: IssueMix,
    /// Cycles from fetch to rename-eligible (3 fetch + 2 decode + 2 rename).
    pub front_latency: u64,
    /// Cycles from issue selection to execute (2 schedule + 3 register read).
    pub issue_to_exec: u64,
    /// Pipeline depth between completion and commit-eligibility
    /// (1 SVW + 3 re-execute stages).
    pub post_exec_depth: u64,
    /// Re-execution data-cache ports (re-executions per cycle).
    pub reexec_ports: usize,
    /// Execution latencies.
    pub latencies: OpLatencies,
    /// Memory hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor.
    pub branch: BranchConfig,
    /// Forwarding store predictor.
    pub fsp: FspConfig,
    /// Delay distance predictor.
    pub ddp: DdpConfig,
    /// Original Store Sets predictor (used only by
    /// [`SqDesign::Associative3StoreSets`]).
    pub store_sets: StoreSetsConfig,
    /// Store alias table entries (256).
    pub sat_entries: usize,
    /// Store sequence Bloom filter entries (2K, byte granularity).
    pub ssbf_entries: usize,
    /// Store PC table entries (2K, byte granularity).
    pub spct_entries: usize,
    /// Hardware SSN width in bits (16): renaming a store whose SSN wraps
    /// drains the pipeline and clears all SSN-holding structures.
    pub ssn_bits: u32,
}

impl SimConfig {
    /// The paper's configuration with the given SQ design.
    #[must_use]
    pub fn with_design(design: SqDesign) -> SimConfig {
        let ddp = DdpConfig {
            max_distance: 64, // = SQ size
            ..DdpConfig::default()
        };
        SimConfig {
            design,
            ordering: OrderingMode::SvwReexecution,
            rob_size: 512,
            iq_size: 300,
            lq_size: 128,
            sq_size: 64,
            fetch_width: 12,
            rename_width: 8,
            commit_width: 8,
            issue: IssueMix::default(),
            front_latency: 7,
            issue_to_exec: 5,
            post_exec_depth: 4,
            reexec_ports: 2,
            latencies: OpLatencies::default(),
            hierarchy: HierarchyConfig::default(),
            branch: BranchConfig::default(),
            fsp: FspConfig::default(),
            ddp,
            store_sets: StoreSetsConfig::default(),
            sat_entries: 256,
            ssbf_entries: 2048,
            spct_entries: 2048,
            ssn_bits: 16,
        }
    }

    /// Validates cross-structure invariants.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the configuration is inconsistent
    /// (e.g. DDP max distance differing from SQ size, zero widths).
    pub fn try_validate(&self) -> Result<(), SimError> {
        let invalid = |msg: &str| Err(SimError::InvalidConfig(msg.to_string()));
        if self.rob_size == 0 || self.sq_size == 0 || self.lq_size == 0 {
            return invalid("window structures (ROB/SQ/LQ) must be non-empty");
        }
        if self.fetch_width == 0 || self.rename_width == 0 || self.commit_width == 0 {
            return invalid("pipeline widths must be non-zero");
        }
        if self.ddp.max_distance as usize != self.sq_size {
            return invalid(
                "DDP distances are bounded by SQ size (\u{2308}log2(SQ.size)\u{2309} bits)",
            );
        }
        if self.ssn_bits < 8 {
            return invalid("SSN width must cover the SQ");
        }
        if self.ordering == OrderingMode::LqCam && self.design.is_indexed() {
            return invalid(
                "an LQ CAM cannot detect wrong-entry forwarding; indexed designs \
                 require value-based re-execution (the paper's §2 argument)",
            );
        }
        Ok(())
    }

    /// Validates cross-structure invariants, panicking on violations.
    ///
    /// This is the legacy convenience wrapper around
    /// [`SimConfig::try_validate`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (e.g. DDP max distance
    /// differing from SQ size, zero widths).
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::with_design(SqDesign::Indexed3FwdDly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_properties() {
        assert!(SqDesign::Indexed3FwdDly.is_indexed());
        assert!(SqDesign::Indexed3FwdDly.uses_delay());
        assert!(!SqDesign::Indexed3Fwd.uses_delay());
        assert!(!SqDesign::Associative3.is_indexed());
        assert_eq!(SqDesign::Associative5Replay.sq_latency(), 5);
        assert_eq!(SqDesign::Indexed3Fwd.sq_latency(), 3);
        assert!(SqDesign::IdealOracle.is_oracle());
        assert!(SqDesign::Associative5FwdPred.predicts_forward_latency());
    }

    #[test]
    fn default_config_is_paper_machine() {
        let c = SimConfig::default();
        c.validate();
        assert_eq!(c.rob_size, 512);
        assert_eq!(c.iq_size, 300);
        assert_eq!(c.lq_size, 128);
        assert_eq!(c.sq_size, 64);
        assert_eq!(c.fetch_width, 12);
        assert_eq!(c.issue.total, 8);
        assert_eq!(c.fsp.entries, 4096);
        assert_eq!(c.ssbf_entries, 2048);
        assert_eq!(c.ssn_bits, 16);
    }

    #[test]
    #[should_panic(expected = "bounded by SQ size")]
    fn validate_catches_ddp_sq_mismatch() {
        let c = SimConfig {
            sq_size: 32,
            ..SimConfig::default()
        };
        c.validate();
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            SqDesign::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), SqDesign::ALL.len());
    }

    #[test]
    fn original_store_sets_is_an_associative_design() {
        let d = SqDesign::Associative3StoreSets;
        assert!(d.uses_original_store_sets());
        assert!(!d.is_indexed());
        assert!(!d.uses_delay());
        assert_eq!(d.sq_latency(), 3);
    }

    #[test]
    fn lq_cam_is_valid_for_associative_designs() {
        let mut c = SimConfig::with_design(SqDesign::Associative3);
        c.ordering = OrderingMode::LqCam;
        c.validate(); // must not panic
    }

    #[test]
    #[should_panic(expected = "wrong-entry forwarding")]
    fn lq_cam_is_rejected_for_indexed_designs() {
        let mut c = SimConfig::with_design(SqDesign::Indexed3Fwd);
        c.ordering = OrderingMode::LqCam;
        c.validate();
    }
}
