//! Per-dynamic-instruction in-flight state.

use sqip_isa::{OpClass, MAX_SRCS};
use sqip_types::{Seq, Ssn};

/// Where an in-flight instruction is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InstState {
    /// Renamed, in the issue queue, waiting on wake conditions.
    Waiting,
    /// All wake conditions satisfied; eligible for issue selection.
    Ready,
    /// Selected; an execute event is in flight.
    Issued,
    /// Executed; completion time known.
    Done,
}

/// The value of one source operand as resolved at rename.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Operand {
    /// No operand (or the zero register).
    None,
    /// Produced by an in-flight instruction; read its speculative value.
    InFlight(Seq),
    /// Architectural at rename time; value captured then.
    Value(u64),
}

/// In-flight state for one dynamic instruction.
///
/// `seq` doubles as the index of the instruction's golden [`TraceRecord`]
/// (re-fetches after a flush recreate the `DynInst` with a new
/// `incarnation` so stale scheduled events can be recognised and dropped).
///
/// [`TraceRecord`]: sqip_isa::TraceRecord
#[derive(Debug, Clone)]
pub(crate) struct DynInst {
    pub seq: Seq,
    pub incarnation: u64,
    pub state: InstState,

    /// Cached `rec.op.class()` — saves the scheduler a record-window
    /// load on every wake and issue. Derived state: not serialised,
    /// rebuilt from the window on snapshot load. Stable across squash
    /// re-fetch (the same seq replays the same golden record).
    pub op_class: OpClass,
    /// Cached `rec.dst.is_some()` (same contract as `op_class`).
    pub has_dst: bool,

    /// Outstanding wake conditions (register producers + forwarding-store
    /// execution + delay-store commit). Ready when zero.
    pub gates: u32,
    pub srcs: [Operand; MAX_SRCS],

    /// Youngest store older than this instruction (program order).
    pub prev_store_ssn: Ssn,
    /// For stores: this store's SSN.
    pub my_ssn: Ssn,

    // ---- load predictions ----
    /// FSP-predicted (partial) store PC the load expects to forward from.
    pub pred_store_pc: Option<u64>,
    /// Predicted forwarding SSN (SAT lookup of `pred_store_pc`).
    pub ssn_fwd: Ssn,
    /// Delay SSN: the load may not execute until this store has committed.
    pub ssn_dly: Ssn,
    /// Store whose execution this load's issue chases (forwarding gate);
    /// the load replays if it arrives at execute before the store did.
    pub wait_exec_ssn: Option<Ssn>,
    /// Fetch-time branch-path history (for path-qualified FSP access).
    pub path: u64,

    // ---- delay accounting ----
    /// Cycle at which the last non-delay gate released.
    pub nondelay_ready: u64,
    /// Cycle at which the delay gate released (0 if never gated).
    pub delay_released: u64,
    /// Whether the delay gate was ever the binding constraint.
    pub delay_gated: bool,

    // ---- execution results ----
    /// Speculative result value (load value, ALU result, store data).
    pub value: u64,
    /// Cycle the value becomes available (`u64::MAX` until executed).
    pub complete_cycle: u64,
    /// Earliest commit cycle (completion + SVW/re-execute depth).
    pub commit_eligible: u64,
    /// For loads: the store forwarded from, if any.
    pub forwarded_from: Option<Ssn>,
    /// For loads: SVW field (forwarding store SSN, else SSNcmt at execute).
    pub svw: Ssn,
    /// For loads: executed while an older store's address was unknown.
    pub older_unknown: bool,
    /// Times this instruction replayed (latency mis-speculation).
    pub replays: u32,
    /// Whether this load stalled on a partial SQ overlap.
    pub partial_stalled: bool,
}

impl DynInst {
    pub(crate) fn new(seq: Seq, incarnation: u64, prev_store_ssn: Ssn) -> DynInst {
        DynInst {
            seq,
            incarnation,
            state: InstState::Waiting,
            op_class: OpClass::None,
            has_dst: false,
            gates: 0,
            srcs: [Operand::None, Operand::None],
            prev_store_ssn,
            my_ssn: Ssn::NONE,
            pred_store_pc: None,
            ssn_fwd: Ssn::NONE,
            ssn_dly: Ssn::NONE,
            wait_exec_ssn: None,
            path: 0,
            nondelay_ready: 0,
            delay_released: 0,
            delay_gated: false,
            value: 0,
            complete_cycle: u64::MAX,
            commit_eligible: u64::MAX,
            forwarded_from: None,
            svw: Ssn::NONE,
            older_unknown: false,
            replays: 0,
            partial_stalled: false,
        }
    }

    /// Releases one wake gate at `cycle`; returns true when the instruction
    /// became fully ready.
    pub(crate) fn release_gate(&mut self, cycle: u64, is_delay_gate: bool) -> bool {
        debug_assert!(self.gates > 0, "releasing a gate that was never armed");
        self.gates -= 1;
        if is_delay_gate {
            self.delay_released = cycle;
        } else {
            self.nondelay_ready = self.nondelay_ready.max(cycle);
        }
        self.gates == 0
    }

    /// Delay attributable to the DDP: cycles between the moment the load
    /// was otherwise ready and the moment its delay store committed.
    pub(crate) fn ddp_delay(&self) -> u64 {
        if self.delay_gated {
            self.delay_released.saturating_sub(self.nondelay_ready)
        } else {
            0
        }
    }
}

impl sqip_snapshot::Snapshot for InstState {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        w.put_u8(match self {
            InstState::Waiting => 0,
            InstState::Ready => 1,
            InstState::Issued => 2,
            InstState::Done => 3,
        });
        Ok(())
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<InstState, sqip_snapshot::SnapError> {
        match r.get_u8()? {
            0 => Ok(InstState::Waiting),
            1 => Ok(InstState::Ready),
            2 => Ok(InstState::Issued),
            3 => Ok(InstState::Done),
            t => Err(sqip_snapshot::SnapError::Corrupt(format!(
                "instruction state tag {t}"
            ))),
        }
    }
}

impl sqip_snapshot::Snapshot for Operand {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        match self {
            Operand::None => w.put_u8(0),
            Operand::InFlight(seq) => {
                w.put_u8(1);
                w.put_u64(seq.0);
            }
            Operand::Value(v) => {
                w.put_u8(2);
                w.put_u64(*v);
            }
        }
        Ok(())
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<Operand, sqip_snapshot::SnapError> {
        match r.get_u8()? {
            0 => Ok(Operand::None),
            1 => Ok(Operand::InFlight(Seq(r.get_u64()?))),
            2 => Ok(Operand::Value(r.get_u64()?)),
            t => Err(sqip_snapshot::SnapError::Corrupt(format!(
                "operand tag {t}"
            ))),
        }
    }
}

sqip_snapshot::snapshot_struct!(DynInst {
    seq,
    incarnation,
    state,
    gates,
    srcs,
    prev_store_ssn,
    my_ssn,
    pred_store_pc,
    ssn_fwd,
    ssn_dly,
    wait_exec_ssn,
    path,
    nondelay_ready,
    delay_released,
    delay_gated,
    value,
    complete_cycle,
    commit_eligible,
    forwarded_from,
    svw,
    older_unknown,
    replays,
    partial_stalled,
} derived {
    // Rebuilt from the record window by `InstSlab::rebuild_record_cache`.
    op_class: OpClass::None,
    has_dst: false,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_release_tracks_readiness() {
        let mut d = DynInst::new(Seq(1), 0, Ssn::NONE);
        d.gates = 2;
        assert!(!d.release_gate(10, false));
        assert!(d.release_gate(12, false));
        assert_eq!(d.nondelay_ready, 12);
        assert_eq!(d.ddp_delay(), 0);
    }

    #[test]
    fn delay_accounting() {
        let mut d = DynInst::new(Seq(1), 0, Ssn::NONE);
        d.gates = 2;
        d.delay_gated = true;
        d.release_gate(10, false); // regs ready at 10
        d.release_gate(63, true); // delay store committed at 63
        assert_eq!(d.ddp_delay(), 53);
    }

    #[test]
    fn delay_that_is_not_binding_costs_nothing() {
        let mut d = DynInst::new(Seq(1), 0, Ssn::NONE);
        d.gates = 2;
        d.delay_gated = true;
        d.release_gate(10, true); // delay store committed first
        d.release_gate(40, false); // registers were the real constraint
        assert_eq!(d.ddp_delay(), 0);
    }
}
