//! Architectural (oracle) dependence analysis over a golden trace.
//!
//! [`OracleBuilder`] computes, for every dynamic load, the youngest older
//! store that wrote any of its bytes. The analysis is a *streaming* pass:
//! the byte map it maintains is forward-only, so each record's oracle info
//! is complete the moment the record is ingested — the pipeline computes
//! it on the fly as records arrive from a
//! [`TraceSource`](sqip_isa::TraceSource), with no whole-trace
//! preprocessing. The `IdealOracle` configuration schedules loads with
//! this information (perfect, violation-free scheduling — the paper's
//! idealised baseline), and the statistics use it to report the
//! architectural load forwarding rate of Table 3's first column.
//! [`OracleInfo`] is the batch form over a materialized [`Trace`].

use sqip_isa::{Trace, TraceRecord};
use sqip_mem::PageTable;
use sqip_types::Seq;

/// The architectural forwarding source of one dynamic load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleFwd {
    /// Sequence number of the producing store (youngest older store whose
    /// span overlaps the load's).
    pub store_seq: Seq,
    /// Whether the store's span fully covers the load (single-entry
    /// forwarding is possible); `false` means a partial overlap.
    pub covers: bool,
    /// Distance in dynamic stores: 0 means the immediately preceding
    /// store, `d` means `d` stores intervene between producer and load.
    pub store_dist: u64,
}

/// The incremental oracle: ingests records in fetch order and returns
/// each one's [`OracleFwd`] info immediately.
///
/// Memory use scales with the program's *address footprint* (one byte-map
/// entry per distinct byte written), not with run length — so arbitrarily
/// long streams analyse in bounded space.
///
/// # Example
///
/// ```
/// use sqip_core::OracleBuilder;
/// use sqip_isa::{ProgramBuilder, ProgramSource, Reg, TraceSource};
/// use sqip_types::DataSize;
///
/// let mut b = ProgramBuilder::new();
/// b.load_imm(Reg::new(1), 7);
/// b.store(DataSize::Quad, Reg::new(1), Reg::ZERO, 0x100);
/// b.load(DataSize::Quad, Reg::new(2), Reg::ZERO, 0x100);
/// b.halt();
///
/// let mut source = ProgramSource::new(b.build()?, 100);
/// let mut oracle = OracleBuilder::new();
/// let mut fwd = None;
/// while let Some(rec) = source.next_record()? {
///     fwd = oracle.ingest(&rec).or(fwd);
/// }
/// let fwd = fwd.expect("the load forwards");
/// assert!(fwd.covers);
/// assert_eq!(fwd.store_dist, 0);
/// # Ok::<(), sqip_isa::IsaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OracleBuilder {
    /// Per-byte (store seq, store ordinal) last-writer entries, organised
    /// as a [`PageTable`] so a memory access resolves one page (usually
    /// via the table's one-entry cache) and then indexes. The per-byte
    /// `HashMap` formulation this replaces hashed every byte of every
    /// store and load — a measurable share of the whole simulator's
    /// runtime. `ord == 0` means never written.
    last_writer: PageTable<(Seq, u64)>,
    store_count: u64,
}

const ORACLE_PAGE_BYTES: u64 = sqip_mem::PAGE_ENTRIES as u64;

impl OracleBuilder {
    /// A fresh oracle with an empty byte map.
    #[must_use]
    pub fn new() -> OracleBuilder {
        OracleBuilder {
            last_writer: PageTable::new((Seq(0), 0)),
            store_count: 0,
        }
    }

    /// Ingests the next record of the stream (records must arrive in
    /// fetch order) and returns the oracle forwarding info for it —
    /// `Some` only for loads whose bytes a previously ingested store
    /// wrote.
    pub fn ingest(&mut self, r: &TraceRecord) -> Option<OracleFwd> {
        if r.is_store() {
            self.store_count += 1;
            let span = r.mem_addr().span(r.size);
            let base = span.base().0;
            let n = u64::from(r.size.bytes());
            let (seq, ord) = (r.seq, self.store_count);
            if base / ORACLE_PAGE_BYTES == (base + n - 1) / ORACLE_PAGE_BYTES {
                let page = self.last_writer.page_mut_or_alloc(base / ORACLE_PAGE_BYTES);
                let off = (base % ORACLE_PAGE_BYTES) as usize;
                for e in &mut page[off..off + n as usize] {
                    *e = (seq, ord);
                }
            } else {
                for b in span.byte_addrs() {
                    let page = self.last_writer.page_mut_or_alloc(b.0 / ORACLE_PAGE_BYTES);
                    page[(b.0 % ORACLE_PAGE_BYTES) as usize] = (seq, ord);
                }
            }
            None
        } else if r.is_load() {
            let span = r.mem_addr().span(r.size);
            let base = span.base().0;
            let n = u64::from(r.size.bytes());
            // One pass: the youngest writer over the load's bytes, plus
            // whether that writer covers every byte. The common
            // non-straddling span resolves its page once.
            let mut newest: Option<(Seq, u64)> = None;
            let mut writers_agree = true;
            let mut scan = |entry: Option<(Seq, u64)>| match (entry, newest) {
                (None, _) => writers_agree = false,
                (Some(e), None) => newest = Some(e),
                (Some((s, ord)), Some((ns, nord))) => {
                    if s != ns {
                        writers_agree = false;
                    }
                    if ord > nord {
                        newest = Some((s, ord));
                    }
                }
            };
            if base / ORACLE_PAGE_BYTES == (base + n - 1) / ORACLE_PAGE_BYTES {
                match self.last_writer.page(base / ORACLE_PAGE_BYTES) {
                    None => writers_agree = false,
                    Some(page) => {
                        let off = (base % ORACLE_PAGE_BYTES) as usize;
                        for e in &page[off..off + n as usize] {
                            scan(Some(*e).filter(|&(_, ord)| ord != 0));
                        }
                    }
                }
            } else {
                for b in span.byte_addrs() {
                    let entry = self
                        .last_writer
                        .page(b.0 / ORACLE_PAGE_BYTES)
                        .map(|page| page[(b.0 % ORACLE_PAGE_BYTES) as usize])
                        .filter(|&(_, ord)| ord != 0);
                    scan(entry);
                }
            }
            newest.map(|(store_seq, ord)| OracleFwd {
                store_seq,
                // Covered iff the youngest overlapping store wrote every
                // byte of the load.
                covers: writers_agree,
                store_dist: self.store_count - ord,
            })
        } else {
            None
        }
    }

    /// Dynamic stores ingested so far.
    #[must_use]
    pub fn stores_seen(&self) -> u64 {
        self.store_count
    }
}

impl Default for OracleBuilder {
    fn default() -> OracleBuilder {
        OracleBuilder::new()
    }
}

sqip_snapshot::snapshot_struct!(OracleFwd {
    store_seq,
    covers,
    store_dist,
});
sqip_snapshot::snapshot_struct!(OracleBuilder {
    last_writer,
    store_count,
});

/// Per-record oracle forwarding info (`None` for non-loads and for loads
/// whose bytes were never written by a traced store).
#[derive(Debug, Clone)]
pub struct OracleInfo {
    per_record: Vec<Option<OracleFwd>>,
}

impl OracleInfo {
    /// Analyses a materialized trace (the batch form of
    /// [`OracleBuilder`]).
    #[must_use]
    pub fn analyze(trace: &Trace) -> OracleInfo {
        let mut builder = OracleBuilder::new();
        let per_record = trace.records().iter().map(|r| builder.ingest(r)).collect();
        OracleInfo { per_record }
    }

    /// Oracle info for the dynamic instruction at `seq`.
    #[must_use]
    pub fn fwd(&self, seq: Seq) -> Option<OracleFwd> {
        self.per_record.get(seq.0 as usize).copied().flatten()
    }

    /// Fraction of dynamic loads whose producer is within `window` dynamic
    /// stores (and fully covers them) — the structural forwarding rate.
    #[must_use]
    pub fn forwarding_rate(&self, trace: &Trace, window: u64) -> f64 {
        if trace.dynamic_loads() == 0 {
            return 0.0;
        }
        let n = self
            .per_record
            .iter()
            .flatten()
            .filter(|f| f.store_dist < window)
            .count();
        n as f64 / trace.dynamic_loads() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqip_isa::{trace_program, ProgramBuilder, Reg};
    use sqip_types::DataSize;

    #[test]
    fn finds_adjacent_producer() {
        let mut b = ProgramBuilder::new();
        let (v, t) = (Reg::new(1), Reg::new(2));
        b.load_imm(v, 7);
        b.store(DataSize::Quad, v, Reg::ZERO, 0x100); // seq 1
        b.load(DataSize::Quad, t, Reg::ZERO, 0x100); // seq 2
        b.halt();
        let trace = trace_program(&b.build().unwrap(), 100).unwrap();
        let oracle = OracleInfo::analyze(&trace);
        let f = oracle.fwd(Seq(2)).unwrap();
        assert_eq!(f.store_seq, Seq(1));
        assert!(f.covers);
        assert_eq!(f.store_dist, 0);
        assert_eq!(oracle.fwd(Seq(0)), None, "non-loads have no info");
    }

    #[test]
    fn distance_counts_intervening_stores() {
        let mut b = ProgramBuilder::new();
        let (v, t) = (Reg::new(1), Reg::new(2));
        b.load_imm(v, 7);
        b.store(DataSize::Quad, v, Reg::ZERO, 0x100); // producer
        b.store(DataSize::Quad, v, Reg::ZERO, 0x200);
        b.store(DataSize::Quad, v, Reg::ZERO, 0x300);
        b.load(DataSize::Quad, t, Reg::ZERO, 0x100); // seq 4
        b.halt();
        let trace = trace_program(&b.build().unwrap(), 100).unwrap();
        let oracle = OracleInfo::analyze(&trace);
        let f = oracle.fwd(Seq(4)).unwrap();
        assert_eq!(f.store_dist, 2, "two stores intervene");
        assert_eq!(f.store_seq, Seq(1));
    }

    #[test]
    fn partial_coverage_detected() {
        let mut b = ProgramBuilder::new();
        let (v, t) = (Reg::new(1), Reg::new(2));
        b.load_imm(v, 7);
        b.store(DataSize::Word, v, Reg::ZERO, 0x100); // writes [0x100,0x104)
        b.store(DataSize::Word, v, Reg::ZERO, 0x104); // writes [0x104,0x108)
        b.load(DataSize::Quad, t, Reg::ZERO, 0x100); // needs both
        b.halt();
        let trace = trace_program(&b.build().unwrap(), 100).unwrap();
        let oracle = OracleInfo::analyze(&trace);
        let f = oracle.fwd(Seq(3)).unwrap();
        assert_eq!(f.store_seq, Seq(2), "youngest overlapping store");
        assert!(!f.covers, "no single store covers the quad load");
    }

    #[test]
    fn untouched_address_has_no_producer() {
        let mut b = ProgramBuilder::new();
        b.load(DataSize::Quad, Reg::new(1), Reg::ZERO, 0x500);
        b.halt();
        let trace = trace_program(&b.build().unwrap(), 100).unwrap();
        let oracle = OracleInfo::analyze(&trace);
        assert_eq!(oracle.fwd(Seq(0)), None);
        assert_eq!(oracle.forwarding_rate(&trace, 64), 0.0);
    }

    #[test]
    fn forwarding_rate_respects_window() {
        let mut b = ProgramBuilder::new();
        let (v, t) = (Reg::new(1), Reg::new(2));
        b.load_imm(v, 7);
        b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
        for i in 0..4 {
            b.store(DataSize::Quad, v, Reg::ZERO, 0x200 + 8 * i);
        }
        b.load(DataSize::Quad, t, Reg::ZERO, 0x100); // dist 4
        b.halt();
        let trace = trace_program(&b.build().unwrap(), 100).unwrap();
        let oracle = OracleInfo::analyze(&trace);
        assert_eq!(oracle.forwarding_rate(&trace, 64), 1.0);
        assert_eq!(oracle.forwarding_rate(&trace, 4), 0.0, "window too small");
    }
}
