//! The cycle-level out-of-order processor model.
//!
//! A 19-stage, 8-way machine driven by a golden trace (oracle control-flow
//! path, architectural addresses) that recomputes *values* speculatively
//! through the modelled dataflow. Store-load forwarding — the subject of
//! the paper — is simulated exactly: loads obtain values from the store
//! queue (associatively or by predicted index, per [`SqDesign`]) or from
//! committed memory, wrong values propagate to dependents, and SVW-filtered
//! pre-commit re-execution catches mis-speculations and flushes.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

use sqip_isa::{Op, OpClass, Trace, TraceRecord};
use sqip_mem::{Hierarchy, MemImage};
use sqip_predictors::{BranchPredictor, Ddp, Fsp, Sat, Spct, Ssbf, StoreSets};
use sqip_queues::{LoadQueue, SqSearch, StoreQueue, Window};
use sqip_types::{Seq, Ssn};

use crate::config::{OrderingMode, SimConfig};
use crate::dyninst::{DynInst, InstState, Operand};
use crate::error::SimError;
use crate::observer::{ObserverAction, SimObserver};
use crate::oracle::OracleInfo;
use crate::stats::SimStats;

const NOT_READY: u64 = u64::MAX;
/// Cycles without a commit after which the simulator declares deadlock.
const WATCHDOG_CYCLES: u64 = 500_000;

/// What a [`Processor::step`] (or [`Processor::run_until`]) left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The trace has not fully committed yet.
    Running,
    /// Every trace record has committed; statistics are final.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    /// Wakeup broadcast: consumers of this producer may now issue.
    Broadcast,
    /// Targeted wake of one waiting instruction (replay re-wake).
    Wake,
    /// Speculative wake of loads gated on a store's execution (key is the
    /// store's SSN). Fired one cycle after the store issues, so that a
    /// dependent load's SQ access lines up right behind the store's SQ
    /// write; loads that arrive early (the store replayed) replay too.
    StoreWake,
    /// The instruction reaches its execute stage.
    Exec,
}

/// The simulator.
///
/// Build one per (configuration, trace) pair and call [`Processor::run`].
///
/// # Example
///
/// ```
/// use sqip_core::{Processor, SimConfig, SqDesign};
/// use sqip_isa::{trace_program, ProgramBuilder, Reg};
/// use sqip_types::DataSize;
///
/// let mut b = ProgramBuilder::new();
/// let (v, t) = (Reg::new(1), Reg::new(2));
/// b.load_imm(v, 7);
/// b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
/// b.load(DataSize::Quad, t, Reg::ZERO, 0x100);
/// b.halt();
/// let trace = trace_program(&b.build()?, 100)?;
///
/// let stats = Processor::new(SimConfig::with_design(SqDesign::Indexed3FwdDly), &trace).run();
/// assert_eq!(stats.committed, trace.len() as u64);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Processor<'t> {
    cfg: SimConfig,
    trace: &'t Trace,
    oracle: OracleInfo,

    cycle: u64,
    incarnation: u64,
    last_commit_cycle: u64,

    // ---- front end ----
    fetch_idx: usize,
    fetch_stall_until: u64,
    /// Mispredicted branch whose resolution fetch is waiting for.
    pending_redirect: Option<Seq>,
    /// Fetched instructions awaiting rename: (seq, rename-eligible cycle,
    /// fetch-time path history snapshot).
    front_q: std::collections::VecDeque<(Seq, u64, u64)>,
    /// Branch-outcome path history at fetch (for path-qualified FSP).
    path_history: u64,

    // ---- rename ----
    ssn_ren: Ssn,
    rename_map: [Option<Seq>; sqip_isa::NUM_REGS],
    committed_regs: [u64; sqip_isa::NUM_REGS],
    /// Waiting for the ROB to drain before wrapping the SSN space.
    draining_for_wrap: bool,

    // ---- backend ----
    rob: Window<Seq>,
    insts: HashMap<u64, DynInst>,
    iq_count: usize,
    ready_q: BTreeSet<u64>,
    events: BinaryHeap<Reverse<(u64, EvKind, u64, u64)>>,
    /// Producer seq -> consumers waiting for its wakeup broadcast.
    wake_on_value: HashMap<u64, Vec<u64>>,
    /// Store SSN -> loads waiting for it to execute (forwarding dependence).
    /// Drained speculatively when the store issues (StoreWake).
    wake_on_store_exec: HashMap<u64, Vec<u64>>,
    /// Store SSN -> loads that already replayed once chasing this store;
    /// drained only when the store actually executes (no more speculative
    /// wakes, breaking replay cascades).
    wake_on_store_exec_strict: HashMap<u64, Vec<u64>>,
    /// Store SSN -> loads waiting for it to commit (delay / partial hit).
    wake_on_store_commit: BTreeMap<u64, Vec<u64>>,

    // ---- dense per-seq value state (survives commit, reset on squash) ----
    spec_value: Vec<u64>,
    value_ready: Vec<u64>,
    wake_time: Vec<u64>,

    // ---- memory system ----
    sq: StoreQueue,
    lq: LoadQueue,
    hierarchy: Hierarchy,
    commit_mem: MemImage,
    ssn_cmt: Ssn,

    // ---- predictors ----
    bp: BranchPredictor,
    fsp: Fsp,
    sat: Sat,
    ddp: Ddp,
    ssbf: Ssbf,
    spct: Spct,
    store_sets: StoreSets,

    stats: SimStats,
}

impl<'t> Processor<'t> {
    /// Builds a processor for one run over `trace`, validating the
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the configuration is inconsistent
    /// (see [`SimConfig::try_validate`]).
    pub fn try_new(cfg: SimConfig, trace: &'t Trace) -> Result<Processor<'t>, SimError> {
        cfg.try_validate()?;
        Ok(Processor::new_unchecked(cfg, trace))
    }

    /// Builds a processor for one run over `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SimConfig::validate`]).
    #[must_use]
    pub fn new(cfg: SimConfig, trace: &'t Trace) -> Processor<'t> {
        cfg.validate();
        Processor::new_unchecked(cfg, trace)
    }

    fn new_unchecked(cfg: SimConfig, trace: &'t Trace) -> Processor<'t> {
        let n = trace.len() + 1;
        Processor {
            oracle: OracleInfo::analyze(trace),
            cycle: 0,
            incarnation: 0,
            last_commit_cycle: 0,
            fetch_idx: 0,
            fetch_stall_until: 0,
            pending_redirect: None,
            front_q: std::collections::VecDeque::new(),
            path_history: 0,
            ssn_ren: Ssn::NONE,
            rename_map: [None; sqip_isa::NUM_REGS],
            committed_regs: [0; sqip_isa::NUM_REGS],
            draining_for_wrap: false,
            rob: Window::new(cfg.rob_size),
            insts: HashMap::new(),
            iq_count: 0,
            ready_q: BTreeSet::new(),
            events: BinaryHeap::new(),
            wake_on_value: HashMap::new(),
            wake_on_store_exec: HashMap::new(),
            wake_on_store_exec_strict: HashMap::new(),
            wake_on_store_commit: BTreeMap::new(),
            spec_value: vec![0; n],
            value_ready: vec![NOT_READY; n],
            wake_time: vec![NOT_READY; n],
            sq: StoreQueue::new(cfg.sq_size),
            lq: LoadQueue::new(cfg.lq_size),
            hierarchy: Hierarchy::new(cfg.hierarchy),
            commit_mem: MemImage::new(),
            ssn_cmt: Ssn::NONE,
            bp: BranchPredictor::new(cfg.branch),
            fsp: Fsp::new(cfg.fsp),
            sat: Sat::new(cfg.sat_entries),
            ddp: Ddp::new(cfg.ddp),
            ssbf: Ssbf::new(cfg.ssbf_entries),
            spct: Spct::new(cfg.spct_entries),
            store_sets: StoreSets::new(cfg.store_sets),
            stats: SimStats::default(),
            cfg,
            trace,
        }
    }

    /// Whether the whole trace has committed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        (self.stats.committed as usize) >= self.trace.len()
    }

    /// The current cycle number.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The statistics accumulated so far. [`Processor::step`] folds the
    /// cycle count and cache counters in after every cycle, so the view
    /// is consistent mid-run.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Folds the hierarchy counters and cycle count into `stats` so the
    /// snapshot is consistent at any point of the run. Idempotent.
    fn sync_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.l1 = self.hierarchy.l1_stats();
        self.stats.l2 = self.hierarchy.l2_stats();
        self.stats.tlb = self.hierarchy.tlb_stats();
    }

    /// Simulates one cycle.
    ///
    /// Returns [`StepOutcome::Done`] once the whole trace has committed
    /// (further calls are no-ops that keep returning `Done`).
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if no instruction has committed for an
    /// implausibly long time — a simulator bug, not a program property.
    pub fn step(&mut self) -> Result<StepOutcome, SimError> {
        if self.is_done() {
            self.sync_stats();
            return Ok(StepOutcome::Done);
        }
        self.cycle += 1;
        self.commit_stage();
        self.process_events();
        self.issue_stage();
        self.rename_stage();
        self.fetch_stage();
        self.sync_stats();
        if self.is_done() {
            return Ok(StepOutcome::Done);
        }
        if self.cycle - self.last_commit_cycle >= WATCHDOG_CYCLES {
            return Err(self.deadlock_error());
        }
        Ok(StepOutcome::Running)
    }

    /// Runs until the trace commits fully or `cycle_limit` is reached,
    /// whichever comes first.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Deadlock`] from [`Processor::step`].
    pub fn run_until(&mut self, cycle_limit: u64) -> Result<StepOutcome, SimError> {
        while self.cycle < cycle_limit {
            if self.step()? == StepOutcome::Done {
                return Ok(StepOutcome::Done);
            }
        }
        Ok(if self.is_done() {
            StepOutcome::Done
        } else {
            StepOutcome::Running
        })
    }

    /// Runs the trace to completion and returns the statistics.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the pipeline stops committing.
    pub fn try_run(mut self) -> Result<SimStats, SimError> {
        while self.step()? == StepOutcome::Running {}
        Ok(self.stats)
    }

    /// Runs to completion with observation hooks: `observer` is started
    /// before the first cycle, called every [`SimObserver::interval`]
    /// cycles, and may abort the run early (the partial statistics are
    /// returned, with `committed < trace.len()`).
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the pipeline stops committing.
    pub fn run_observed<O: SimObserver + ?Sized>(
        mut self,
        observer: &mut O,
    ) -> Result<SimStats, SimError> {
        observer.on_start(&self.cfg, self.trace.len());
        let interval = observer.interval().max(1);
        while self.step()? == StepOutcome::Running {
            if self.cycle.is_multiple_of(interval)
                && observer.on_interval(self.cycle, &self.stats) == ObserverAction::Abort
            {
                return Ok(self.stats);
            }
        }
        observer.on_finish(&self.stats);
        Ok(self.stats)
    }

    /// Runs the trace to completion and returns the statistics.
    ///
    /// This is the legacy convenience wrapper around
    /// [`Processor::try_run`].
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (no commit for a long time), which
    /// indicates a simulator bug rather than a program property.
    #[must_use]
    pub fn run(self) -> SimStats {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    fn deadlock_error(&self) -> SimError {
        let head = self.rob.front().map(|&s| {
            let i = &self.insts[&s.0];
            format!(
                "head {} op={} state={:?} gates={} fwd={} dly={} wait_exec={:?} prev={} ssn_cmt={}",
                s.0,
                self.rec(s).op,
                i.state,
                i.gates,
                i.ssn_fwd,
                i.ssn_dly,
                i.wait_exec_ssn,
                i.prev_store_ssn,
                self.ssn_cmt
            )
        });
        SimError::Deadlock {
            cycle: self.cycle,
            committed: self.stats.committed,
            detail: format!(
                "fetch_idx {}, rob {}, iq {}, head {:?}",
                self.fetch_idx,
                self.rob.len(),
                self.iq_count,
                head
            ),
        }
    }

    fn rec(&self, seq: Seq) -> &TraceRecord {
        &self.trace.records()[seq.0 as usize]
    }

    /// Pseudo-PC naming a store in the original Store Sets tables: derived
    /// from the partial store PC so that SPCT-based violation training and
    /// rename-time lookups agree.
    fn store_pseudo_pc(&self, pc: sqip_types::Pc) -> sqip_types::Pc {
        sqip_types::Pc::from_index(self.fsp.partial_store_pc(pc) as usize)
    }

    // ================================================================
    // Fetch
    // ================================================================

    fn fetch_stage(&mut self) {
        if self.cycle < self.fetch_stall_until || self.pending_redirect.is_some() {
            return;
        }
        let mut budget = self.cfg.fetch_width;
        let mut taken_seen = false;
        let front_cap = self.cfg.fetch_width * 4;
        while budget > 0 && self.fetch_idx < self.trace.len() && self.front_q.len() < front_cap {
            let seq = Seq(self.fetch_idx as u64);
            let rec = &self.trace.records()[self.fetch_idx];
            let mispredicted = self.predict_branch(rec);
            self.front_q
                .push_back((seq, self.cycle + self.cfg.front_latency, self.path_history));
            if rec.op.is_conditional() {
                self.path_history = (self.path_history << 1) | u64::from(rec.taken);
            }
            self.fetch_idx += 1;
            budget -= 1;
            if mispredicted {
                self.pending_redirect = Some(seq);
                break;
            }
            if rec.taken {
                if taken_seen {
                    break; // at most one taken branch per fetch cycle
                }
                taken_seen = true;
            }
        }
    }

    /// Consults the branch predictor for a fetched record; returns whether
    /// fetch must stall for resolution (misprediction).
    ///
    /// Tables and history are trained here, at fetch, rather than at
    /// execute: with oracle-path fetch the outcome is already known, and
    /// fetch-time training makes predictor accuracy a pure function of the
    /// fetch sequence instead of execution timing, so store-queue designs
    /// are compared under identical front-end behaviour.
    fn predict_branch(&mut self, rec: &TraceRecord) -> bool {
        match rec.op {
            Op::BranchZ | Op::BranchNZ => {
                let pred = self.bp.predict_conditional(rec.pc);
                let mis = pred.taken != rec.taken; // direct targets resolve at decode
                self.stats.branch_mispredicts += u64::from(mis);
                self.bp.update(rec.pc, true, rec.taken, rec.next_pc);
                mis
            }
            Op::Call => {
                let _ = self.bp.predict_unconditional(rec.pc, true);
                false
            }
            Op::Jump => false,
            Op::Ret => {
                let pred = self.bp.predict_return(rec.pc);
                let mis = pred.target != Some(rec.next_pc);
                self.stats.return_mispredicts += u64::from(mis);
                mis
            }
            _ => false,
        }
    }

    // ================================================================
    // Rename
    // ================================================================

    fn rename_stage(&mut self) {
        for _ in 0..self.cfg.rename_width {
            let Some(&(seq, ready_at, path)) = self.front_q.front() else {
                break;
            };
            if ready_at > self.cycle || self.rob.is_full() || self.iq_count >= self.cfg.iq_size {
                break;
            }
            let rec = *self.rec(seq);
            if rec.is_load() && self.lq.is_full() {
                break;
            }
            if rec.is_store() {
                if self.sq.is_full() {
                    break;
                }
                // SSN wrap-around: drain the pipeline, then clear every
                // SSN-holding structure (§3.1).
                if self.ssn_ren.next().low_bits(self.cfg.ssn_bits) == 0 || self.draining_for_wrap {
                    if !self.rob.is_empty() {
                        self.draining_for_wrap = true;
                        break;
                    }
                    self.draining_for_wrap = false;
                    self.ssbf.clear();
                    self.spct.clear();
                    self.sat.clear();
                    self.stats.ssn_wraps += 1;
                }
            }
            self.front_q.pop_front();
            self.rename_one(seq, &rec, path);
        }
    }

    fn rename_one(&mut self, seq: Seq, rec: &TraceRecord, path: u64) {
        let mut inst = DynInst::new(seq, self.incarnation, self.ssn_ren);
        inst.nondelay_ready = self.cycle;
        inst.path = path;

        // Resolve source operands against the rename map.
        let mut gates = 0u32;
        for (i, src) in rec.srcs.iter().enumerate() {
            inst.srcs[i] = match src {
                None => Operand::None,
                Some(r) => match self.rename_map[r.index()] {
                    Some(p) => {
                        if self.wake_time[p.0 as usize] > self.cycle {
                            gates += 1;
                            self.wake_on_value.entry(p.0).or_default().push(seq.0);
                        }
                        Operand::InFlight(p)
                    }
                    None => Operand::Value(self.committed_regs[r.index()]),
                },
            };
        }

        if rec.is_store() {
            self.ssn_ren = self.ssn_ren.next();
            inst.my_ssn = self.ssn_ren;
            self.sq
                .allocate(inst.my_ssn, rec.pc)
                .expect("SQ fullness checked before rename");
            self.sat
                .update(self.fsp.partial_store_pc(rec.pc), inst.my_ssn, seq);
            if self.cfg.design.uses_original_store_sets() {
                // In-set store serialisation: this store becomes the set's
                // last-fetched store and orders behind its predecessor.
                // Stores are named by the same partial-PC pseudo-PC used in
                // violation training (the SPCT stores partial PCs).
                let pseudo = self.store_pseudo_pc(rec.pc);
                let pred = self.store_sets.rename_store(pseudo, inst.my_ssn);
                if pred.is_in_flight(self.ssn_cmt) && !self.sq.is_executed(pred) {
                    gates += 1;
                    self.wake_on_store_exec
                        .entry(pred.0)
                        .or_default()
                        .push(seq.0);
                }
            }
        }

        if rec.is_load() {
            self.lq
                .allocate(seq, rec.pc)
                .expect("LQ fullness checked before rename");
            gates += self.attach_load_predictions(&mut inst, rec);
        }

        if let Some(d) = rec.dst {
            self.rename_map[d.index()] = Some(seq);
        }

        inst.gates = gates;
        inst.state = if gates == 0 {
            InstState::Ready
        } else {
            InstState::Waiting
        };
        if gates == 0 {
            self.ready_q.insert(seq.0);
        }
        self.iq_count += 1;
        self.rob
            .push_back(seq)
            .expect("ROB fullness checked before rename");
        self.insts.insert(seq.0, inst);
    }

    /// Chained FSP/SAT access (or oracle information) plus DDP access for a
    /// renaming load. Returns the number of scheduling gates added.
    fn attach_load_predictions(&mut self, inst: &mut DynInst, rec: &TraceRecord) -> u32 {
        let mut gates = 0;

        if self.cfg.design.is_oracle() {
            if let Some(f) = self.oracle.fwd(inst.seq) {
                if let Some(store) = self.insts.get(&f.store_seq.0) {
                    let ssn = store.my_ssn;
                    if f.covers {
                        inst.wait_exec_ssn = Some(ssn);
                        if !self.sq.is_executed(ssn) {
                            gates += 1;
                            self.wake_on_store_exec
                                .entry(ssn.0)
                                .or_default()
                                .push(inst.seq.0);
                        }
                    } else if ssn > self.ssn_cmt {
                        // Partial coverage: wait for the store to commit.
                        gates += 1;
                        self.wake_on_store_commit
                            .entry(ssn.0)
                            .or_default()
                            .push(inst.seq.0);
                    }
                }
            }
            return gates;
        }

        if self.cfg.design.uses_original_store_sets() {
            // Original Store Sets: the load waits for the last fetched
            // store of its set to execute.
            let ssn = self.store_sets.rename_load(rec.pc);
            if ssn.is_in_flight(self.ssn_cmt) {
                inst.ssn_fwd = ssn;
                inst.wait_exec_ssn = Some(ssn);
                if !self.sq.is_executed(ssn) {
                    gates += 1;
                    self.wake_on_store_exec
                        .entry(ssn.0)
                        .or_default()
                        .push(inst.seq.0);
                }
            }
            return gates;
        }

        // Forwarding index prediction: FSP at decode, SAT at rename, keep
        // the youngest in-flight SSN.
        let mut best: Option<(u64, Ssn)> = None;
        for pc in self.fsp.predict_with_path(rec.pc, inst.path) {
            let ssn = self.sat.lookup(pc);
            if ssn.is_in_flight(self.ssn_cmt) && best.is_none_or(|(_, b)| ssn > b) {
                best = Some((pc, ssn));
            }
        }
        if let Some((pc, ssn)) = best {
            inst.pred_store_pc = Some(pc);
            inst.ssn_fwd = ssn;
            inst.wait_exec_ssn = Some(ssn);
            if !self.sq.is_executed(ssn) {
                gates += 1;
                self.wake_on_store_exec
                    .entry(ssn.0)
                    .or_default()
                    .push(inst.seq.0);
            }
        }

        // Delay index prediction: SSNdly = SSNren − Ddly; the load waits
        // until that store commits.
        if self.cfg.design.uses_delay() {
            if let Some(d) = self.ddp.predict(rec.pc) {
                let ssn_dly = self.ssn_ren.minus(d);
                inst.ssn_dly = ssn_dly;
                if ssn_dly > self.ssn_cmt {
                    gates += 1;
                    inst.delay_gated = true;
                    self.wake_on_store_commit
                        .entry(ssn_dly.0)
                        .or_default()
                        .push(inst.seq.0);
                }
            }
        }
        gates
    }

    // ================================================================
    // Issue
    // ================================================================

    fn issue_stage(&mut self) {
        let mix = self.cfg.issue;
        let (mut total, mut int, mut fp, mut br, mut ld, mut st) =
            (mix.total, mix.int, mix.fp, mix.branch, mix.load, mix.store);
        let mut issued = Vec::new();

        for &seq in &self.ready_q {
            if total == 0 {
                break;
            }
            let class = self.trace.records()[seq as usize].op.class();
            let port = match class {
                OpClass::IntAlu | OpClass::IntMul | OpClass::None => &mut int,
                OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => &mut fp,
                OpClass::Branch => &mut br,
                OpClass::Load => &mut ld,
                OpClass::Store => &mut st,
            };
            if *port == 0 {
                continue; // port conflict: skip, stay ready
            }
            *port -= 1;
            total -= 1;
            issued.push(seq);
        }

        for seq in issued {
            self.ready_q.remove(&seq);
            self.iq_count -= 1;
            let (inc, my_ssn) = {
                let inst = self.insts.get_mut(&seq).expect("ready inst in flight");
                debug_assert_eq!(inst.state, InstState::Ready);
                inst.state = InstState::Issued;
                (inst.incarnation, inst.my_ssn)
            };
            let exec_at = self.cycle + self.cfg.issue_to_exec;
            self.events.push(Reverse((exec_at, EvKind::Exec, seq, inc)));
            if my_ssn.is_some() {
                // Speculatively wake forwarding-gated loads behind this
                // store so their SQ read chases its SQ write.
                self.events
                    .push(Reverse((self.cycle + 1, EvKind::StoreWake, my_ssn.0, inc)));
            }

            // Wakeup broadcast for register consumers, timed so a
            // back-to-back dependent executes exactly when the value is
            // predicted to be ready.
            let rec = &self.trace.records()[seq as usize];
            if rec.dst.is_some() {
                let pred_latency = self.predicted_latency(rec, seq);
                let broadcast_at = (exec_at + pred_latency)
                    .saturating_sub(self.cfg.issue_to_exec)
                    .max(self.cycle + 1);
                self.wake_time[seq as usize] = broadcast_at;
                self.events
                    .push(Reverse((broadcast_at, EvKind::Broadcast, seq, inc)));
            }
        }
    }

    /// The latency the scheduler assumes for this instruction's value —
    /// where the design-specific load-latency speculation policy lives.
    fn predicted_latency(&self, rec: &TraceRecord, seq: u64) -> u64 {
        let l = self.cfg.latencies;
        match rec.op.class() {
            OpClass::IntAlu | OpClass::None => l.int_alu,
            OpClass::IntMul => l.int_mul,
            OpClass::FpAdd => l.fp_add,
            OpClass::FpMul => l.fp_mul,
            OpClass::FpDiv => l.fp_div,
            OpClass::Branch => l.branch,
            OpClass::Store => 1,
            OpClass::Load => {
                let cache = self.cfg.hierarchy.l1.hit_latency;
                if self.cfg.design.predicts_forward_latency() {
                    // Forward-predicted loads schedule dependents at SQ
                    // latency; everything else at cache latency.
                    let inst = &self.insts[&seq];
                    if inst.ssn_fwd.is_some() {
                        self.cfg.design.sq_latency()
                    } else {
                        cache
                    }
                } else {
                    // All other designs optimistically assume a cache hit;
                    // mismatches replay dependents.
                    cache
                }
            }
        }
    }

    // ================================================================
    // Events (execute, wakeup)
    // ================================================================

    fn process_events(&mut self) {
        while let Some(&Reverse((at, kind, seq, inc))) = self.events.peek() {
            if at > self.cycle {
                break;
            }
            self.events.pop();
            // Drop events addressed to squashed incarnations. Broadcasts
            // are exempt: a producer may legitimately commit before its
            // re-broadcast fires, and its registered consumers must still
            // wake (wake_one itself guards against squashed consumers).
            let alive = self.insts.get(&seq).is_some_and(|i| i.incarnation == inc);
            match kind {
                EvKind::Broadcast => self.do_broadcast(seq),
                EvKind::Wake => {
                    if alive {
                        self.wake_one(seq, false);
                    }
                }
                EvKind::StoreWake => {
                    // `seq` carries the store's SSN, not a sequence number.
                    if let Some(waiters) = self.wake_on_store_exec.remove(&seq) {
                        for w in waiters {
                            self.wake_one(w, false);
                        }
                    }
                }
                EvKind::Exec => {
                    if alive {
                        self.do_execute(Seq(seq));
                    }
                }
            }
        }
    }

    fn do_broadcast(&mut self, producer: u64) {
        let Some(consumers) = self.wake_on_value.remove(&producer) else {
            return;
        };
        for c in consumers {
            self.wake_one(c, false);
        }
    }

    fn wake_one(&mut self, seq: u64, is_delay_gate: bool) {
        let Some(inst) = self.insts.get_mut(&seq) else {
            return;
        };
        if inst.state != InstState::Waiting {
            return;
        }
        if inst.release_gate(self.cycle, is_delay_gate) {
            inst.state = InstState::Ready;
            self.ready_q.insert(seq);
        }
    }

    fn do_execute(&mut self, seq: Seq) {
        let rec = *self.rec(seq);

        // Selective replay: operands whose producers are not actually ready
        // (scheduler latency mis-speculation) force a replay.
        let mut unready: Vec<u64> = Vec::new();
        {
            let inst = &self.insts[&seq.0];
            for src in inst.srcs {
                if let Operand::InFlight(p) = src {
                    if self.value_ready[p.0 as usize] > self.cycle {
                        unready.push(p.0);
                    }
                }
            }
        }
        if !unready.is_empty() {
            self.replay(seq, &unready);
            return;
        }

        let (s1, s2) = self.operand_values(seq);
        match rec.op.class() {
            OpClass::Load => self.execute_load(seq, &rec),
            OpClass::Store => self.execute_store(seq, &rec, s2),
            OpClass::Branch => self.execute_branch(seq, &rec),
            _ => {
                let value = rec.op.eval(s1, s2, rec.imm);
                let latency = self.predicted_latency(&rec, seq.0);
                self.complete(seq, value, latency);
            }
        }
    }

    fn operand_values(&self, seq: Seq) -> (u64, u64) {
        let inst = &self.insts[&seq.0];
        let get = |o: Operand| match o {
            Operand::None => 0,
            Operand::Value(v) => v,
            Operand::InFlight(p) => self.spec_value[p.0 as usize],
        };
        (get(inst.srcs[0]), get(inst.srcs[1]))
    }

    fn replay(&mut self, seq: Seq, unready: &[u64]) {
        self.stats.replays += 1;
        let now = self.cycle;
        let issue_to_exec = self.cfg.issue_to_exec;
        let mut wakes = Vec::new();
        {
            let inst = self
                .insts
                .get_mut(&seq.0)
                .expect("replaying inst in flight");
            inst.state = InstState::Waiting;
            inst.replays += 1;
            inst.gates = unready.len() as u32;
        }
        for &p in unready {
            let vr = self.value_ready[p as usize];
            if vr == NOT_READY {
                // Producer hasn't executed; it will re-broadcast.
                self.wake_on_value.entry(p).or_default().push(seq.0);
            } else {
                wakes.push(vr.saturating_sub(issue_to_exec).max(now + 1));
            }
        }
        self.iq_count += 1;
        let inc = self.insts[&seq.0].incarnation;
        for at in wakes {
            self.events.push(Reverse((at, EvKind::Wake, seq.0, inc)));
        }
    }

    /// Finishes execution: value known, completion scheduled.
    fn complete(&mut self, seq: Seq, value: u64, latency: u64) {
        let ready_at = self.cycle + latency;
        self.spec_value[seq.0 as usize] = value;
        self.value_ready[seq.0 as usize] = ready_at;
        let post = self.cfg.post_exec_depth;
        {
            let inst = self
                .insts
                .get_mut(&seq.0)
                .expect("completing inst in flight");
            inst.state = InstState::Done;
            inst.value = value;
            inst.complete_cycle = ready_at;
            inst.commit_eligible = ready_at + post;
        }
        // Consumers that replayed while this instruction was mid-flight
        // (its issue-time broadcast already fired) re-registered on the
        // wait list; a successful execution is the last broadcast they can
        // get. Time it so their execute lines up with value readiness.
        if self.wake_on_value.contains_key(&seq.0) {
            let inc = self.insts[&seq.0].incarnation;
            let at = ready_at
                .saturating_sub(self.cfg.issue_to_exec)
                .max(self.cycle + 1);
            self.events
                .push(Reverse((at, EvKind::Broadcast, seq.0, inc)));
        }
    }

    fn execute_store(&mut self, seq: Seq, rec: &TraceRecord, data_operand: u64) {
        let span = rec.mem_addr().span(rec.size);
        let data = rec.size.truncate(data_operand);
        let (ssn, inc) = {
            let inst = &self.insts[&seq.0];
            (inst.my_ssn, inst.incarnation)
        };
        self.sq.write(ssn, span, data);
        if self.cfg.design.uses_original_store_sets() {
            let pseudo = self.store_pseudo_pc(rec.pc);
            self.store_sets.store_executed(pseudo, ssn);
        }
        if self.cfg.ordering == OrderingMode::LqCam {
            // Conventional LQ search: any younger, already-executed load
            // overlapping this store's span read a stale value. Flush from
            // the oldest such load and train the schedulers.
            let victim = self
                .lq
                .iter()
                .find(|l| l.seq > seq && l.span.is_some_and(|ls| ls.overlaps(span)) && l.svw < ssn)
                .map(|l| (l.seq, l.pc));
            if let Some((lseq, lpc)) = victim {
                self.stats.mis_forwards += 1;
                if self.cfg.design.uses_original_store_sets() {
                    let pseudo = self.store_pseudo_pc(rec.pc);
                    self.store_sets.violation(lpc, pseudo);
                } else if !self.cfg.design.is_oracle() {
                    self.fsp.learn(lpc, self.fsp.partial_store_pc(rec.pc));
                }
                self.complete(seq, data, 1);
                self.squash_from(lseq);
                return;
            }
        }
        self.complete(seq, data, 1);
        let _ = inc;
        // Wake loads waiting on this store's execution (forwarding gate).
        if let Some(waiters) = self.wake_on_store_exec.remove(&ssn.0) {
            for w in waiters {
                self.wake_one(w, false);
            }
        }
        if let Some(waiters) = self.wake_on_store_exec_strict.remove(&ssn.0) {
            for w in waiters {
                self.wake_one(w, false);
            }
        }
    }

    fn execute_branch(&mut self, seq: Seq, rec: &TraceRecord) {
        // (The predictor was trained at fetch; execution only resolves the
        // pending redirect.)
        // Link value for calls; 0 for other transfers.
        let value = if rec.op == Op::Call {
            rec.pc.next().0
        } else {
            0
        };
        self.complete(seq, value, self.cfg.latencies.branch);
        if self.pending_redirect == Some(seq) {
            self.pending_redirect = None;
            self.fetch_stall_until = self.cycle + 1;
        }
    }

    fn execute_load(&mut self, seq: Seq, rec: &TraceRecord) {
        let span = rec.mem_addr().span(rec.size);
        let (prev_store_ssn, ssn_fwd, wait_exec) = {
            let inst = &self.insts[&seq.0];
            (inst.prev_store_ssn, inst.ssn_fwd, inst.wait_exec_ssn)
        };

        // The load was scheduled chasing a store's execution; if that store
        // replayed, the load replays too (forwarding mis-schedule).
        if let Some(gate) = wait_exec {
            if gate.is_in_flight(self.ssn_cmt) && !self.sq.is_executed(gate) {
                self.stats.replays += 1;
                let inst = self.insts.get_mut(&seq.0).expect("load in flight");
                inst.state = InstState::Waiting;
                inst.gates = 1;
                inst.replays += 1;
                self.iq_count += 1;
                self.wake_on_store_exec_strict
                    .entry(gate.0)
                    .or_default()
                    .push(seq.0);
                return;
            }
        }

        // The data cache is accessed in parallel with the SQ in all designs.
        let cache_outcome = self.hierarchy.access(rec.mem_addr());
        let cache_value = self.commit_mem.read(rec.mem_addr(), rec.size);
        let older_unknown = self.sq.has_unexecuted_older(prev_store_ssn);

        let (value, latency, forwarded, svw) = if self.cfg.design.is_indexed() {
            // Speculative indexed access: read the single predicted entry.
            match ssn_fwd
                .is_in_flight(self.ssn_cmt)
                .then(|| self.sq.indexed_read(ssn_fwd, span, rec.size))
                .flatten()
            {
                Some(v) => (v, self.cfg.design.sq_latency(), Some(ssn_fwd), ssn_fwd),
                None => (
                    cache_value,
                    cache_outcome.total_latency(),
                    None,
                    self.ssn_cmt,
                ),
            }
        } else {
            // Conventional fully-associative search.
            match self.sq.search(prev_store_ssn, span, rec.size) {
                SqSearch::Forward { ssn, value } => {
                    (value, self.cfg.design.sq_latency(), Some(ssn), ssn)
                }
                SqSearch::Partial { ssn } => {
                    // No single entry can supply the value: stall until the
                    // store commits, then retry (reads the cache).
                    self.stats.partial_stalls += 1;
                    let inst = self.insts.get_mut(&seq.0).expect("load in flight");
                    inst.state = InstState::Waiting;
                    inst.gates = 1;
                    inst.partial_stalled = true;
                    self.iq_count += 1;
                    if ssn > self.ssn_cmt {
                        self.wake_on_store_commit
                            .entry(ssn.0)
                            .or_default()
                            .push(seq.0);
                    } else {
                        // Committed in the meantime: retry immediately.
                        let inc = self.insts[&seq.0].incarnation;
                        self.events
                            .push(Reverse((self.cycle + 1, EvKind::Wake, seq.0, inc)));
                    }
                    return;
                }
                SqSearch::Miss => (
                    cache_value,
                    cache_outcome.total_latency(),
                    None,
                    self.ssn_cmt,
                ),
            }
        };

        self.lq
            .record_execution(seq, span, value, svw, older_unknown);
        {
            let inst = self.insts.get_mut(&seq.0).expect("load in flight");
            inst.forwarded_from = forwarded;
            inst.svw = svw;
            inst.older_unknown = older_unknown;
        }
        self.complete(seq, value, latency);
    }

    // ================================================================
    // Commit (SVW check, filtered re-execution, training, flush)
    // ================================================================

    fn commit_stage(&mut self) {
        let mut reexec_budget = self.cfg.reexec_ports;
        for _ in 0..self.cfg.commit_width {
            let Some(&seq) = self.rob.front() else { break };
            let eligible = {
                let inst = &self.insts[&seq.0];
                inst.state == InstState::Done && inst.commit_eligible <= self.cycle
            };
            if !eligible {
                break;
            }
            let rec = *self.rec(seq);
            if rec.is_load() && !self.commit_load(seq, &rec, &mut reexec_budget) {
                break; // re-exec port stall or flush: stop committing
            }
            if rec.is_store() {
                self.commit_store(seq, &rec);
            }
            if rec.op.is_conditional() {
                self.stats.branches += 1;
            }
            self.retire(seq, &rec);
        }
    }

    /// Returns `false` if commit must stop (port stall — load stays; or a
    /// flush was triggered — load already retired inside).
    fn commit_load(&mut self, seq: Seq, rec: &TraceRecord, reexec_budget: &mut usize) -> bool {
        let span = rec.mem_addr().span(rec.size);
        let (svw, older_unknown, value, fwd) = {
            let inst = &self.insts[&seq.0];
            (
                inst.svw,
                inst.older_unknown,
                inst.value,
                inst.forwarded_from,
            )
        };
        self.stats.naive_reexec_candidates += u64::from(older_unknown);

        // SVW filter: re-execute only if a store the load is vulnerable to
        // wrote its address. Under the conventional LQ CAM, ordering was
        // verified at store execution and no re-execution happens at all.
        let needs_reexec =
            self.cfg.ordering == OrderingMode::SvwReexecution && self.ssbf.newest(span) > svw;
        let mut flush = false;
        if needs_reexec {
            if *reexec_budget == 0 {
                self.stats.reexec_port_stalls += 1;
                return false;
            }
            *reexec_budget -= 1;
            self.stats.re_executions += 1;
            self.hierarchy.touch(rec.mem_addr());
            let correct = self.commit_mem.read(rec.mem_addr(), rec.size);
            debug_assert_eq!(
                correct, rec.result,
                "commit-time memory must match the golden trace"
            );
            if value != correct {
                // Mis-forwarding (or ordering violation): fix the load's
                // value from re-execution and flush everything younger.
                self.stats.mis_forwards += 1;
                let inst = self.insts.get_mut(&seq.0).expect("load in flight");
                inst.value = correct;
                self.spec_value[seq.0 as usize] = correct;
                flush = true;
            }
        }

        self.train_load_predictors(seq, rec, span, flush);

        // Per-load statistics.
        self.stats.loads += 1;
        self.stats.loads_forwarded += u64::from(fwd.is_some());
        if let Some(f) = self.oracle.fwd(seq) {
            if f.store_dist < self.cfg.sq_size as u64 {
                self.stats.forwarding_relevant_loads += 1;
            }
        }
        let inst = &self.insts[&seq.0];
        let delay = inst.ddp_delay();
        if inst.delay_gated && delay > 0 {
            self.stats.loads_delayed += 1;
            self.stats.delay_cycles += delay;
        }

        let _ = self.lq.commit_head();
        if flush {
            self.retire(seq, rec);
            self.flush_younger(seq);
            return false;
        }
        true
    }

    /// FSP/DDP training at load commit, per Table 1 and §3.2–3.3.
    fn train_load_predictors(
        &mut self,
        seq: Seq,
        rec: &TraceRecord,
        span: sqip_types::AddrSpan,
        flushed: bool,
    ) {
        if self.cfg.design.is_oracle() {
            return;
        }
        if self.cfg.design.uses_original_store_sets() {
            // Original Store Sets trains on violations: merge the load and
            // the producing store (recovered via the SPCT as a pseudo-PC,
            // exactly the Table 1 row-1 `SSIT[ld.PC, SPCT[ld.A]]` action).
            if flushed {
                if let Some(partial) = span.byte_addrs().find_map(|b| self.spct.lookup_byte(b)) {
                    self.store_sets
                        .violation(rec.pc, sqip_types::Pc::from_index(partial as usize));
                }
            }
            return;
        }
        let (pred_pc, ssn_fwd, prev_store_ssn, was_delayed, path) = {
            let inst = &self.insts[&seq.0];
            (
                inst.pred_store_pc,
                inst.ssn_fwd,
                inst.prev_store_ssn,
                inst.delay_gated,
                inst.path,
            )
        };

        let newest = self.ssbf.newest(span);
        // Distance in dynamic stores from the load's rename point back to
        // the actual producer (SSNcmt at load commit == prev_store_ssn).
        // Ssn::NONE yields a huge distance, i.e. "no forwarding possible".
        let dist = prev_store_ssn.distance_from(newest);
        let forwarding_possible = newest.is_some() && dist < self.cfg.sq_size as u64;

        // Delay training (§3.3 / Table 1): every wrong forwarding
        // prediction (SSNfwd != SSBF[A]) raises the delay counter; correct
        // predictions lower it. The *distance* fields are only trained when
        // the event carries corroborated evidence — the load flushed, was
        // forcibly delayed, or named the right PC but the wrong dynamic
        // instance (the not-most-recent signature). Wrong predictions
        // whose cache value was right anyway keep the counter trained but
        // leave the distance at max (an effective no-delay), so aliasing
        // noise in the 2K-entry SSBF cannot manufacture real delays.
        if self.cfg.design.uses_delay() {
            let wrong = ssn_fwd != newest;
            if !wrong {
                self.ddp.unlearn(rec.pc);
            } else {
                let pc_right_instance_wrong = forwarding_possible && pred_pc.is_some() && {
                    let actual = span
                        .byte_addrs()
                        .find(|b| self.ssbf.newest(b.span(sqip_types::DataSize::Byte)) == newest)
                        .and_then(|b| self.spct.lookup_byte(b));
                    pred_pc == actual
                };
                let evidence = flushed || was_delayed || pc_right_instance_wrong;
                self.ddp.learn(rec.pc, evidence.then_some(dist));
            }
        }

        if !forwarding_possible {
            // The load and the most recent store to its address are too far
            // apart for forwarding (or there is none): unlearn (§3.2).
            if let Some(pc) = pred_pc {
                self.fsp.weaken_with_path(rec.pc, pc, path);
            }
            return;
        }

        // Recover the actual producing store's PC from the SPCT (probing
        // the byte whose SSBF entry is newest).
        let actual_pc = span
            .byte_addrs()
            .find(|b| self.ssbf.newest(b.span(sqip_types::DataSize::Byte)) == newest)
            .and_then(|b| self.spct.lookup_byte(b));

        let instance_correct = ssn_fwd == newest;
        let pc_correct = pred_pc.is_some() && pred_pc == actual_pc;

        if instance_correct && pc_correct {
            // Correct forwarding prediction: reinforce (§3.2 "we learn
            // store-load dependences on correct forwarding").
            self.fsp.strengthen_with_path(
                rec.pc,
                pred_pc.expect("pc_correct implies prediction"),
                path,
            );
        } else if pc_correct {
            let pc = pred_pc.expect("pc_correct implies prediction");
            if self.cfg.design.is_indexed() {
                // Right store PC, wrong dynamic instance (not-most-recent
                // forwarding): an indexed SQ cannot exploit this entry —
                // "there is no point in delaying the load on a store
                // instance on which it is known not to depend" — unlearn.
                self.fsp.weaken_with_path(rec.pc, pc, path);
            } else {
                // For an associative SQ the FSP is only a scheduler, and
                // gating on the most recent instance transitively orders
                // the load behind the true (older) producer, which the
                // search then finds: the dependence is useful — reinforce.
                self.fsp.strengthen_with_path(rec.pc, pc, path);
            }
        } else if flushed {
            // "... and on mis-forwardings in which we fail to predict not
            // only the forwarding index, but also the forwarding store PC"
            // — new dependences are created only by actual mis-forwardings,
            // so lossy-SSBF aliasing cannot plant spurious dependences.
            if let Some(ap) = actual_pc {
                self.fsp.learn_with_path(rec.pc, ap, path);
            }
        }
    }

    fn commit_store(&mut self, seq: Seq, rec: &TraceRecord) {
        let entry = self.sq.commit_head();
        debug_assert_eq!(entry.ssn, self.insts[&seq.0].my_ssn);
        let span = rec.mem_addr().span(rec.size);
        debug_assert_eq!(
            entry.data, rec.result,
            "store data must be architecturally correct by commit"
        );
        self.commit_mem.write(rec.mem_addr(), rec.size, entry.data);
        self.hierarchy.touch(rec.mem_addr());
        self.ssbf.update(span, entry.ssn);
        self.spct.update(span, self.fsp.partial_store_pc(rec.pc));
        self.ssn_cmt = entry.ssn;
        self.stats.stores += 1;

        // Release delay-gated and partial-stalled loads waiting on stores
        // up to this SSN.
        let mut released = self.wake_on_store_commit.split_off(&(entry.ssn.0 + 1));
        std::mem::swap(&mut released, &mut self.wake_on_store_commit);
        for (_, waiters) in released {
            for w in waiters {
                self.wake_one(w, true);
            }
        }
    }

    fn retire(&mut self, seq: Seq, rec: &TraceRecord) {
        if let Some(d) = rec.dst {
            self.committed_regs[d.index()] = self.insts[&seq.0].value;
            if self.rename_map[d.index()] == Some(seq) {
                self.rename_map[d.index()] = None;
            }
        }
        let _ = self.rob.pop_front();
        self.insts.remove(&seq.0);
        self.sat.prune_log(seq);
        self.stats.committed += 1;
        self.last_commit_cycle = self.cycle;
    }

    /// Mid-window squash (LQ CAM violation): everything at or younger than
    /// `from` is squashed and refetched; older instructions stay in flight.
    fn squash_from(&mut self, from: Seq) {
        self.stats.flushes += 1;
        self.incarnation += 1;

        let squashed: Vec<u64> = self
            .insts
            .keys()
            .copied()
            .filter(|&s| s >= from.0)
            .collect();
        self.stats.squashed += squashed.len() as u64;
        for &s in &squashed {
            self.insts.remove(&s);
            self.value_ready[s as usize] = NOT_READY;
            self.wake_time[s as usize] = NOT_READY;
        }
        let keep = self.rob.iter().take_while(|&&s| s < from).count();
        self.rob.truncate(keep);
        self.ready_q.retain(|&s| s < from.0);
        self.iq_count = self
            .insts
            .values()
            .filter(|i| matches!(i.state, InstState::Waiting | InstState::Ready))
            .count();
        self.lq.squash_from(from);

        // SSNs roll back to the youngest surviving store.
        let keep_ssn = self
            .insts
            .values()
            .map(|i| i.my_ssn)
            .max()
            .unwrap_or(Ssn::NONE)
            .max(self.ssn_cmt);
        self.sq.squash_from(keep_ssn.next());
        self.ssn_ren = keep_ssn;
        self.sat.rollback_younger(from);
        self.store_sets.clear_lfst();

        // Rebuild the rename map from the surviving window, oldest first.
        self.rename_map = [None; sqip_isa::NUM_REGS];
        let survivors: Vec<Seq> = self.rob.iter().copied().collect();
        for s in survivors {
            if let Some(d) = self.rec(s).dst {
                self.rename_map[d.index()] = Some(s);
            }
        }

        self.front_q.clear();
        if self.pending_redirect.is_some_and(|s| s >= from) {
            self.pending_redirect = None;
        }
        self.fetch_idx = from.0 as usize;
        self.fetch_stall_until = self.cycle + 1;
        self.draining_for_wrap = false;
    }

    /// Full pipeline flush: squash everything younger than the committing
    /// load and refetch from the next instruction.
    fn flush_younger(&mut self, from: Seq) {
        self.stats.flushes += 1;
        self.incarnation += 1;

        for &s in self.insts.keys() {
            self.value_ready[s as usize] = NOT_READY;
            self.wake_time[s as usize] = NOT_READY;
        }
        self.stats.squashed += self.insts.len() as u64;
        self.insts.clear();
        self.rob.clear();
        self.ready_q.clear();
        self.iq_count = 0;
        self.lq.clear();
        self.sq.clear();
        self.wake_on_value.clear();
        self.wake_on_store_exec.clear();
        self.wake_on_store_exec_strict.clear();
        self.wake_on_store_commit.clear();
        self.front_q.clear();
        self.rename_map = [None; sqip_isa::NUM_REGS];

        // All in-flight stores were squashed; the rename-time SSN counter
        // rolls back to the committed high-water mark, and the SAT undoes
        // the squashed stores' writes.
        self.ssn_ren = self.ssn_cmt;
        self.sat.rollback_younger(from.next());
        self.store_sets.clear_lfst();
        self.draining_for_wrap = false;

        self.pending_redirect = None;
        self.fetch_idx = from.0 as usize + 1;
        self.fetch_stall_until = self.cycle + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SqDesign;
    use sqip_isa::{trace_program, ProgramBuilder, Reg};
    use sqip_types::DataSize;

    fn run_design(design: SqDesign, trace: &Trace) -> SimStats {
        Processor::new(SimConfig::with_design(design), trace).run()
    }

    /// st/ld to the same address every iteration: classic forwarding.
    fn forwarding_loop(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.load_imm(ctr, iters);
        b.load_imm(v, 7);
        let top = b.label("top");
        b.add_imm(v, v, 3);
        b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
        b.load(DataSize::Quad, t, Reg::ZERO, 0x100);
        b.add(t, t, v); // consume the loaded value
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        trace_program(&b.build().unwrap(), 1_000_000).unwrap()
    }

    /// The paper's not-most-recent pathology: X[i] = A * X[i-2].
    fn not_most_recent_loop(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, ptr, x, y) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        b.load_imm(ctr, iters);
        b.load_imm(ptr, 0x1000);
        // Seed X[0], X[1].
        b.load_imm(x, 1);
        b.store(DataSize::Quad, x, ptr, 0);
        b.store(DataSize::Quad, x, ptr, 8);
        let top = b.label("top");
        b.load(DataSize::Quad, y, ptr, 0); // X[i-2]
        b.mul_imm(y, y, 3); // A * X[i-2]
        b.store(DataSize::Quad, y, ptr, 16); // X[i]
        b.add_imm(ptr, ptr, 8);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        trace_program(&b.build().unwrap(), 1_000_000).unwrap()
    }

    /// Pointer-chase over a large ring: cache misses, no forwarding.
    fn pointer_chase(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, p) = (Reg::new(1), Reg::new(2));
        // Build a ring of 4096 nodes, stride 1 page to defeat the L1/TLB.
        let nodes = 512i64;
        b.load_imm(ctr, nodes);
        b.load_imm(p, 0x10_0000);
        let init = b.label("init");
        {
            let (nxt,) = (Reg::new(3),);
            b.add_imm(nxt, p, 4096);
            b.store(DataSize::Quad, nxt, p, 0);
            b.add_imm(p, p, 4096);
            b.add_imm(ctr, ctr, -1);
            b.branch_nz(ctr, init);
        }
        // Close the ring.
        let last = 0x10_0000 + (nodes - 1) * 4096;
        let (head,) = (Reg::new(3),);
        b.load_imm(head, 0x10_0000);
        b.load_imm(p, last);
        b.store(DataSize::Quad, head, p, 0);
        // Chase.
        b.load_imm(ctr, iters);
        b.load_imm(p, 0x10_0000);
        let top = b.label("chase");
        b.load(DataSize::Quad, p, p, 0);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        trace_program(&b.build().unwrap(), 10_000_000).unwrap()
    }

    #[test]
    fn all_designs_complete_a_forwarding_loop() {
        let trace = forwarding_loop(200);
        for design in SqDesign::ALL {
            let stats = run_design(design, &trace);
            assert_eq!(
                stats.committed,
                trace.len() as u64,
                "{design} must commit the whole trace"
            );
            assert!(stats.cycles > 0);
        }
    }

    #[test]
    fn ideal_oracle_never_flushes() {
        let trace = not_most_recent_loop(300);
        let stats = run_design(SqDesign::IdealOracle, &trace);
        assert_eq!(stats.flushes, 0, "oracle scheduling never violates");
        assert_eq!(stats.mis_forwards, 0);
    }

    #[test]
    fn indexed_design_learns_to_forward() {
        let trace = forwarding_loop(500);
        let stats = run_design(SqDesign::Indexed3FwdDly, &trace);
        // After the first training flush, every iteration's load forwards.
        assert!(
            stats.loads_forwarded > 400,
            "expected most loads to forward, got {}",
            stats.loads_forwarded
        );
        assert!(
            stats.mis_forwards <= 3,
            "steady-state forwarding should flush at most a couple of times, got {}",
            stats.mis_forwards
        );
    }

    #[test]
    fn associative_designs_forward_without_training_flushes() {
        let trace = forwarding_loop(300);
        let stats = run_design(SqDesign::Associative3, &trace);
        assert!(stats.loads_forwarded > 250);
        // The associative SQ always finds the right store once scheduling
        // is reasonable; a handful of early ordering violations may occur.
        assert!(stats.mis_forwards <= 3, "got {}", stats.mis_forwards);
    }

    #[test]
    fn delay_prediction_tames_not_most_recent_forwarding() {
        let trace = not_most_recent_loop(800);
        let fwd = run_design(SqDesign::Indexed3Fwd, &trace);
        let dly = run_design(SqDesign::Indexed3FwdDly, &trace);
        assert!(
            fwd.mis_forwards > 5,
            "raw indexed forwarding should flush repeatedly on X[i]=A*X[i-2], got {}",
            fwd.mis_forwards
        );
        assert!(
            dly.mis_forwards * 5 < fwd.mis_forwards,
            "delay prediction should remove most flushes ({} vs {})",
            dly.mis_forwards,
            fwd.mis_forwards
        );
        assert!(dly.loads_delayed > 0, "delays must actually be applied");
        // Delay converts the flush penalty into a (usually smaller, but per
        // the paper not universally smaller — it degrades 6 of 47 programs)
        // delay penalty; require it to stay in the same ballpark here and
        // leave the aggregate comparison to the Figure 4 harness.
        assert!(
            (dly.cycles as f64) < fwd.cycles as f64 * 1.25,
            "delay penalty must stay comparable to the flush penalty ({} vs {})",
            dly.cycles,
            fwd.cycles
        );
    }

    #[test]
    fn values_stay_architectural_across_designs() {
        // The debug_assert in commit_store cross-checks every committed
        // store against the golden trace; run a value-heavy program under
        // every design to exercise it.
        let trace = not_most_recent_loop(200);
        for design in SqDesign::ALL {
            let stats = run_design(design, &trace);
            assert_eq!(stats.committed, trace.len() as u64, "{design}");
        }
    }

    #[test]
    fn cache_misses_trigger_replays() {
        let trace = pointer_chase(2000);
        let stats = run_design(SqDesign::Indexed3FwdDly, &trace);
        assert!(
            stats.l1.misses > 500,
            "page-stride pointer chase must miss, got {:?}",
            stats.l1
        );
        assert!(
            stats.replays > 100,
            "consumers of missing loads must replay, got {}",
            stats.replays
        );
        assert_eq!(stats.mis_forwards, 0, "no forwarding in a pure chase");
    }

    /// acc round-trips through memory every iteration, so SQ forwarding
    /// latency sits on the program's critical path; an independent fdiv
    /// drip keeps the ROB head busy so stores linger in the SQ (otherwise
    /// a lone two-instruction loop commits stores before adjacent loads
    /// reach their SQ access and nothing ever forwards).
    fn serial_forwarding_loop(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, acc, f) = (Reg::new(1), Reg::new(2), Reg::new(5));
        b.load_imm(ctr, iters);
        b.load_imm(acc, 1);
        b.load_imm(f, 12345);
        let top = b.label("top");
        b.fdiv(f, f, f);
        b.store(DataSize::Quad, acc, Reg::ZERO, 0x100);
        b.load(DataSize::Quad, acc, Reg::ZERO, 0x100);
        b.add_imm(acc, acc, 3);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        trace_program(&b.build().unwrap(), 1_000_000).unwrap()
    }

    #[test]
    fn slow_associative_sq_is_slower_on_forwarding_code() {
        let trace = serial_forwarding_loop(500);
        let fast = run_design(SqDesign::Associative3, &trace);
        let slow = run_design(SqDesign::Associative5Replay, &trace);
        assert!(
            slow.cycles > fast.cycles,
            "5-cycle SQ must cost cycles on forwarding-heavy code ({} vs {})",
            slow.cycles,
            fast.cycles
        );
        assert!(
            slow.replays > fast.replays,
            "forwarded loads replay dependents"
        );
    }

    #[test]
    fn forward_latency_prediction_cuts_replays() {
        let trace = serial_forwarding_loop(500);
        let replay = run_design(SqDesign::Associative5Replay, &trace);
        let fwdpred = run_design(SqDesign::Associative5FwdPred, &trace);
        assert!(
            fwdpred.replays < replay.replays,
            "predicting forwarders avoids replays ({} vs {})",
            fwdpred.replays,
            replay.replays
        );
    }

    #[test]
    fn branch_mispredicts_are_counted() {
        // A data-dependent unpredictable-ish branch: alternating pattern is
        // actually learnable by gshare, so use a short loop with a final
        // fall-through that mispredicts once per run at most; just sanity
        // check counters move.
        let trace = forwarding_loop(100);
        let stats = run_design(SqDesign::Indexed3FwdDly, &trace);
        assert!(stats.branches > 90);
        assert!(stats.branch_mispredicts <= stats.branches);
    }

    #[test]
    fn svw_filter_limits_reexecution() {
        let trace = forwarding_loop(500);
        let stats = run_design(SqDesign::Indexed3FwdDly, &trace);
        assert!(
            stats.re_executions <= stats.naive_reexec_candidates + stats.mis_forwards,
            "SVW must not re-execute more than the naive rule ({} vs {})",
            stats.re_executions,
            stats.naive_reexec_candidates
        );
    }

    #[test]
    fn ipc_ordering_matches_the_paper() {
        // ideal >= indexed+dly, and every design completes with sane IPC.
        let trace = forwarding_loop(1000);
        let ideal = run_design(SqDesign::IdealOracle, &trace);
        let dly = run_design(SqDesign::Indexed3FwdDly, &trace);
        assert!(
            ideal.cycles <= dly.cycles,
            "oracle must be at least as fast ({} vs {})",
            ideal.cycles,
            dly.cycles
        );
        assert!(
            ideal.ipc() > 0.5,
            "8-wide machine should sustain decent IPC"
        );
    }

    #[test]
    fn ssn_wrap_drains_cleanly() {
        let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        cfg.ssn_bits = 8; // wrap every 256 stores
        let trace = forwarding_loop(600); // 600 stores => 2 wraps
        let stats = Processor::new(cfg, &trace).run();
        assert_eq!(stats.committed, trace.len() as u64);
        assert_eq!(stats.ssn_wraps, 2);
    }

    #[test]
    fn partial_forwarding_stalls_associative_loads() {
        // Word store, quad load overlapping it: partial hit.
        let mut b = ProgramBuilder::new();
        let (ctr, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.load_imm(ctr, 50);
        b.load_imm(v, 0xAB);
        let top = b.label("top");
        b.store(DataSize::Word, v, Reg::ZERO, 0x100);
        b.load(DataSize::Quad, t, Reg::ZERO, 0x100);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        let trace = trace_program(&b.build().unwrap(), 100_000).unwrap();
        let stats = run_design(SqDesign::Associative3, &trace);
        assert_eq!(stats.committed, trace.len() as u64);
        assert!(stats.partial_stalls > 10, "got {}", stats.partial_stalls);
        // The very first iteration may take an ordering violation before
        // the FSP learns the dependence; after that, loads stall instead.
        assert!(
            stats.mis_forwards <= 2,
            "stall, not mis-speculate: {}",
            stats.mis_forwards
        );
    }

    #[test]
    fn empty_like_program_terminates() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let trace = trace_program(&b.build().unwrap(), 10).unwrap();
        let stats = run_design(SqDesign::Indexed3FwdDly, &trace);
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.loads, 0);
    }
}

#[cfg(test)]
mod ordering_tests {
    use super::*;
    use crate::config::{OrderingMode, SqDesign};
    use sqip_isa::{trace_program, ProgramBuilder, Reg};
    use sqip_types::DataSize;

    /// A loop guaranteed to produce early-load ordering hazards: the store
    /// data depends on a long fdiv chain, so unscheduled loads race it.
    fn hazard_loop(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, f, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.load_imm(ctr, iters);
        b.load_imm(f, 12345);
        let top = b.label("top");
        b.fdiv(f, f, f); // slow producer
        b.add_imm(f, f, 1); // keep the value nonzero and changing
        b.store(DataSize::Quad, f, Reg::ZERO, 0x800);
        b.load(DataSize::Quad, t, Reg::ZERO, 0x800);
        b.xor(t, t, f);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        trace_program(&b.build().unwrap(), 1_000_000).unwrap()
    }

    fn cam_config(design: SqDesign) -> SimConfig {
        let mut cfg = SimConfig::with_design(design);
        cfg.ordering = OrderingMode::LqCam;
        cfg
    }

    #[test]
    fn lq_cam_detects_and_recovers_from_violations() {
        let trace = hazard_loop(300);
        let stats = Processor::new(cam_config(SqDesign::Associative3), &trace).run();
        // The debug assertions in commit_store verify every committed store
        // against the golden trace, so completion here means the partial
        // squash restored a consistent machine state every time.
        assert_eq!(stats.committed, trace.len() as u64);
        assert!(
            stats.flushes > 0,
            "the hazard loop must violate at least once"
        );
        assert_eq!(stats.re_executions, 0, "LQ CAM mode never re-executes");
    }

    #[test]
    fn lq_cam_matches_svw_results_on_all_associative_designs() {
        let trace = hazard_loop(300);
        for design in [
            SqDesign::IdealOracle,
            SqDesign::Associative3StoreSets,
            SqDesign::Associative3,
            SqDesign::Associative5Replay,
            SqDesign::Associative5FwdPred,
        ] {
            let cam = Processor::new(cam_config(design), &trace).run();
            let svw = Processor::new(SimConfig::with_design(design), &trace).run();
            assert_eq!(cam.committed, trace.len() as u64, "{design} (cam)");
            assert_eq!(svw.committed, trace.len() as u64, "{design} (svw)");
        }
    }

    #[test]
    fn lq_cam_flushes_less_work_than_full_pipeline_flush() {
        // A CAM violation squashes from the offending load, not the whole
        // window, so it should squash less work per flush on average.
        let trace = hazard_loop(400);
        let cam = Processor::new(cam_config(SqDesign::Associative3), &trace).run();
        let svw = Processor::new(SimConfig::with_design(SqDesign::Associative3), &trace).run();
        if cam.flushes > 0 && svw.flushes > 0 {
            let cam_per = cam.squashed as f64 / cam.flushes as f64;
            let svw_per = svw.squashed as f64 / svw.flushes as f64;
            assert!(
                cam_per <= svw_per * 1.1,
                "partial squash should not discard more than a commit-point flush ({cam_per:.0} vs {svw_per:.0})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "wrong-entry forwarding")]
    fn lq_cam_rejects_indexed_designs() {
        let trace = hazard_loop(10);
        let _ = Processor::new(cam_config(SqDesign::Indexed3FwdDly), &trace).run();
    }

    #[test]
    fn original_store_sets_learns_to_schedule() {
        let trace = hazard_loop(400);
        let stats = Processor::new(
            SimConfig::with_design(SqDesign::Associative3StoreSets),
            &trace,
        )
        .run();
        assert_eq!(stats.committed, trace.len() as u64);
        // After the first few violations the SSIT/LFST pair gates the load
        // behind the store and violations stop.
        assert!(
            stats.mis_forwards < 20,
            "store sets must learn the dependence, got {} violations",
            stats.mis_forwards
        );
        assert!(stats.loads_forwarded > 200, "and the load then forwards");
    }

    #[test]
    fn original_and_reformulated_store_sets_are_comparable() {
        // §4.4: "in many other cases our formulation slightly outperforms
        // the original" — they should land within a few percent of each
        // other on well-behaved code.
        let trace = hazard_loop(400);
        let orig = Processor::new(
            SimConfig::with_design(SqDesign::Associative3StoreSets),
            &trace,
        )
        .run();
        let reform = Processor::new(SimConfig::with_design(SqDesign::Associative3), &trace).run();
        let ratio = orig.cycles as f64 / reform.cycles as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "formulations should be comparable, got ratio {ratio:.3}"
        );
    }
}

#[cfg(test)]
mod path_tests {
    use super::*;
    use crate::config::SqDesign;
    use sqip_isa::{trace_program, ProgramBuilder, Reg};
    use sqip_types::DataSize;

    /// One load fed by two static stores selected by an alternating branch:
    /// a 1-way (direct-mapped) FSP thrashes between the two dependences,
    /// but with path bits the two paths index different sets and each can
    /// hold its own store.
    fn branch_selected_producer(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, par, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        b.load_imm(ctr, iters);
        b.load_imm(v, 5);
        let top = b.label("top");
        b.add_imm(v, v, 1);
        b.and(par, ctr, Reg::new(5)); // parity selector (r5 = 1, prepended)
        b.branch_nz_to(par, "odd");
        b.store(DataSize::Quad, v, Reg::ZERO, 0xA80); // even-path store
        b.jump_to("join");
        b.place("odd");
        b.store(DataSize::Quad, v, Reg::ZERO, 0xA80); // odd-path store
        b.place("join");
        b.load(DataSize::Quad, t, Reg::ZERO, 0xA80);
        b.xor(t, t, v);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        // Prepend mask setup by rebuilding: simplest to set r5 in a fresh builder.
        let inner = b.build().unwrap();
        let mut outer = ProgramBuilder::new();
        outer.load_imm(Reg::new(5), 1);
        for (_, inst) in inner.iter() {
            let mut i = *inst;
            // shift branch/jump targets by 1 for the prepended instruction
            if i.op.is_branch() && !matches!(i.op, sqip_isa::Op::Ret) {
                i.imm += 1;
            }
            outer.emit(i);
        }
        let p = outer.build().unwrap();
        trace_program(&p, 1_000_000).unwrap()
    }

    #[test]
    fn path_bits_rescue_a_direct_mapped_fsp() {
        let trace = branch_selected_producer(600);
        let run = |path_bits: u32| {
            let mut cfg = SimConfig::with_design(SqDesign::Indexed3Fwd);
            cfg.fsp.ways = 1; // direct-mapped: one dependence per set
            cfg.fsp.path_bits = path_bits;
            Processor::new(cfg, &trace).run()
        };
        let flat = run(0);
        let pathful = run(4);
        assert_eq!(flat.committed, trace.len() as u64);
        assert_eq!(pathful.committed, trace.len() as u64);
        assert!(
            pathful.loads_forwarded > flat.loads_forwarded,
            "path-qualified FSP should separate the two producers: {} vs {}",
            pathful.loads_forwarded,
            flat.loads_forwarded
        );
    }

    #[test]
    fn path_bits_zero_is_the_default_design() {
        // Sanity: path_bits = 0 must behave identically to the plain API.
        let trace = branch_selected_producer(200);
        let a = Processor::new(SimConfig::with_design(SqDesign::Indexed3FwdDly), &trace).run();
        let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        cfg.fsp.path_bits = 0;
        let b = Processor::new(cfg, &trace).run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mis_forwards, b.mis_forwards);
    }
}
