//! JSON round-trip coverage for the serializable simulation types:
//! `SimStats`, `SimConfig` (with every nested config), `SqDesign` and
//! `CacheStats`.

use sqip_core::{SimConfig, SimStats, SqDesign};
use sqip_mem::CacheStats;

#[test]
fn sim_stats_round_trip_through_json() {
    let stats = SimStats {
        cycles: 123_456_789,
        committed: 42,
        loads: 7,
        stores: 3,
        mis_forwards: 1,
        delay_cycles: 99,
        l1: CacheStats {
            hits: u64::MAX - 5,
            misses: 17,
        },
        ..SimStats::default()
    };
    let json = serde_json::to_string(&stats).unwrap();
    let back: SimStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
    // Spot-check the wire format is a plain object with named counters.
    assert!(json.contains("\"cycles\":123456789"), "{json}");
    assert!(json.contains("\"hits\":18446744073709551610"), "{json}");
}

#[test]
fn cache_stats_round_trip_through_json() {
    let stats = CacheStats {
        hits: 10,
        misses: 3,
    };
    let json = serde_json::to_string(&stats).unwrap();
    let back: CacheStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
}

#[test]
fn every_design_round_trips_through_json() {
    for design in SqDesign::ALL {
        let json = serde_json::to_string(&design).unwrap();
        assert_eq!(json, format!("\"{design:?}\""));
        let back: SqDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(back, design);
    }
    assert!(serde_json::from_str::<SqDesign>("\"NotADesign\"").is_err());
}

#[test]
fn full_config_round_trips_through_json() {
    for design in SqDesign::ALL {
        let mut cfg = SimConfig::with_design(design);
        cfg.fsp.entries = 512;
        cfg.fsp.path_bits = 4;
        cfg.ssn_bits = 10;
        cfg.hierarchy.memory_latency = 250;
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        // SimConfig has no PartialEq (it holds nested config structs from
        // several crates); compare the canonical JSON forms instead.
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&cfg).unwrap()
        );
        back.validate();
    }
}
