//! JSON round-trip coverage for the serializable simulation types:
//! `SimStats`, `SimConfig` (with every nested config), `SqDesign` and
//! `CacheStats`.

use sqip_core::{SimConfig, SimStats, SqDesign};
use sqip_mem::CacheStats;

#[test]
fn sim_stats_round_trip_through_json() {
    let stats = SimStats {
        cycles: 123_456_789,
        committed: 42,
        loads: 7,
        stores: 3,
        mis_forwards: 1,
        delay_cycles: 99,
        l1: CacheStats {
            hits: u64::MAX - 5,
            misses: 17,
        },
        ..SimStats::default()
    };
    let json = serde_json::to_string(&stats).unwrap();
    let back: SimStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
    // Spot-check the wire format is a plain object with named counters.
    assert!(json.contains("\"cycles\":123456789"), "{json}");
    assert!(json.contains("\"hits\":18446744073709551610"), "{json}");
}

#[test]
fn cache_stats_round_trip_through_json() {
    let stats = CacheStats {
        hits: 10,
        misses: 3,
    };
    let json = serde_json::to_string(&stats).unwrap();
    let back: CacheStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
}

#[test]
fn every_design_round_trips_through_json() {
    for design in SqDesign::ALL {
        let json = serde_json::to_string(&design).unwrap();
        // Designs serialize as their registry name (== Display label).
        assert_eq!(json, format!("\"{design}\""));
        let back: SqDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(back, design);
    }
    // Registry extensions serialize the same way.
    let ext: SqDesign = "indexed-5-fwd+dly".parse().unwrap();
    let json = serde_json::to_string(&ext).unwrap();
    assert_eq!(json, "\"indexed-5-fwd+dly\"");
    assert_eq!(serde_json::from_str::<SqDesign>(&json).unwrap(), ext);
    assert!(serde_json::from_str::<SqDesign>("\"NotADesign\"").is_err());
}

#[test]
fn legacy_enum_variant_json_still_deserializes() {
    // Pre-registry results serialized designs as enum variant names;
    // those JSON files must keep loading.
    for (legacy, design) in [
        ("\"IdealOracle\"", SqDesign::IdealOracle),
        ("\"Associative3StoreSets\"", SqDesign::Associative3StoreSets),
        ("\"Associative3\"", SqDesign::Associative3),
        ("\"Associative5Replay\"", SqDesign::Associative5Replay),
        ("\"Associative5FwdPred\"", SqDesign::Associative5FwdPred),
        ("\"Indexed3Fwd\"", SqDesign::Indexed3Fwd),
        ("\"Indexed3FwdDly\"", SqDesign::Indexed3FwdDly),
    ] {
        let back: SqDesign = serde_json::from_str(legacy).unwrap();
        assert_eq!(back, design, "{legacy}");
    }
}

#[test]
fn full_config_round_trips_through_json() {
    for design in SqDesign::ALL {
        let mut cfg = SimConfig::with_design(design);
        cfg.fsp.entries = 512;
        cfg.fsp.path_bits = 4;
        cfg.ssn_bits = 10;
        cfg.hierarchy.memory_latency = 250;
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        // SimConfig has no PartialEq (it holds nested config structs from
        // several crates); compare the canonical JSON forms instead.
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&cfg).unwrap()
        );
        back.validate();
    }
}
