//! End-to-end property tests: randomly generated programs must run to
//! completion under every store-queue design, with architecturally correct
//! results (the simulator cross-checks every committed store and every
//! re-executed load against the golden trace via debug assertions, which
//! are active in test builds).

use proptest::prelude::*;
use sqip_core::{Engine, OrderingMode, Processor, SimConfig, SqDesign, StepOutcome};
use sqip_isa::{trace_program, Program, ProgramBuilder, ProgramSource, Reg, Trace};
use sqip_types::{Addr, DataSize};

#[derive(Debug, Clone)]
enum Stmt {
    Alu(u8, u8, u8),
    AddImm(u8, u8, i8),
    Mul(u8, u8, u8),
    Store(u8, u16, u8), // data reg, slot, size index
    Load(u8, u16, u8),  // dst reg, slot, size index
    Fp(u8, u8),
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let reg = 1u8..20;
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Stmt::Alu(a, b, c)),
        (reg.clone(), reg.clone(), any::<i8>()).prop_map(|(a, b, i)| Stmt::AddImm(a, b, i)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Stmt::Mul(a, b, c)),
        (reg.clone(), 0u16..24, 0u8..4).prop_map(|(d, s, z)| Stmt::Store(d, s, z)),
        (reg.clone(), 0u16..24, 0u8..4).prop_map(|(d, s, z)| Stmt::Load(d, s, z)),
        (reg.clone(), reg).prop_map(|(a, b)| Stmt::Fp(a, b)),
    ]
}

fn build_trace(body: &[Stmt], iters: i64) -> Trace {
    trace_program(&build_program(body, iters), 1_000_000).unwrap()
}

fn build_program(body: &[Stmt], iters: i64) -> Program {
    let sizes = [
        DataSize::Byte,
        DataSize::Half,
        DataSize::Word,
        DataSize::Quad,
    ];
    let mut b = ProgramBuilder::new();
    let ctr = Reg::new(62);
    b.load_imm(ctr, iters);
    for r in 1..20 {
        b.load_imm(Reg::new(r), i64::from(r) * 77 + 1);
    }
    let top = b.label("top");
    for s in body {
        match *s {
            Stmt::Alu(a, x, y) => {
                b.xor(Reg::new(a), Reg::new(x), Reg::new(y));
            }
            Stmt::AddImm(a, x, i) => {
                b.add_imm(Reg::new(a), Reg::new(x), i64::from(i));
            }
            Stmt::Mul(a, x, y) => {
                b.mul(Reg::new(a), Reg::new(x), Reg::new(y));
            }
            Stmt::Store(d, slot, z) => {
                // 8-byte aligned slots so accesses overlap in varied ways.
                b.store(
                    sizes[z as usize],
                    Reg::new(d),
                    Reg::ZERO,
                    0x400 + 8 * i64::from(slot),
                );
            }
            Stmt::Load(d, slot, z) => {
                b.load(
                    sizes[z as usize],
                    Reg::new(d),
                    Reg::ZERO,
                    0x400 + 8 * i64::from(slot),
                );
            }
            Stmt::Fp(a, x) => {
                b.fmul(Reg::new(a), Reg::new(a), Reg::new(x));
            }
        }
    }
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    b.build().unwrap()
}

/// Random machine-geometry knobs for the engine-differential properties.
/// Kept structurally valid by construction (`SimConfig::try_validate`
/// cross-checks are re-asserted in the tests): the DDP distance bound
/// tracks the SQ size, and widths stay non-zero.
#[derive(Debug, Clone, Copy)]
struct ConfigKnobs {
    rob_size: usize,
    iq_size: usize,
    lq_size: usize,
    sq_size: usize,
    fetch_width: usize,
    rename_width: usize,
    commit_width: usize,
    front_latency: u64,
    /// Zero exercises events scheduled "in the past" (wheel clamping).
    issue_to_exec: u64,
    post_exec_depth: u64,
    reexec_ports: usize,
    ssn_bits: u32,
    /// Ranges across the event wheel's 512-cycle span so the overflow
    /// heap (far-event migration) is exercised end-to-end.
    memory_latency: u64,
}

impl ConfigKnobs {
    fn apply(self, mut cfg: SimConfig) -> SimConfig {
        cfg.rob_size = self.rob_size;
        cfg.iq_size = self.iq_size;
        cfg.lq_size = self.lq_size;
        cfg.sq_size = self.sq_size;
        cfg.ddp.max_distance = self.sq_size as u64;
        cfg.fetch_width = self.fetch_width;
        cfg.rename_width = self.rename_width;
        cfg.commit_width = self.commit_width;
        cfg.front_latency = self.front_latency;
        cfg.issue_to_exec = self.issue_to_exec;
        cfg.post_exec_depth = self.post_exec_depth;
        cfg.reexec_ports = self.reexec_ports;
        cfg.ssn_bits = self.ssn_bits;
        cfg.hierarchy.memory_latency = self.memory_latency;
        cfg
    }
}

fn config_knobs_strategy() -> impl Strategy<Value = ConfigKnobs> {
    (
        (8usize..64, 8usize..64, 8usize..32, 8usize..32),
        (1usize..8, 1usize..8, 1usize..8),
        (0u64..8, 0u64..6, 0u64..6, 1usize..3, 8u32..12),
        100u64..1000,
    )
        .prop_map(
            |(
                (rob_size, iq_size, lq_size, sq_size),
                (fetch_width, rename_width, commit_width),
                (front_latency, issue_to_exec, post_exec_depth, reexec_ports, ssn_bits),
                memory_latency,
            )| ConfigKnobs {
                rob_size,
                iq_size,
                lq_size,
                sq_size,
                fetch_width,
                rename_width,
                commit_width,
                front_latency,
                issue_to_exec,
                post_exec_depth,
                reexec_ports,
                ssn_bits,
                memory_latency,
            },
        )
}

/// Runs `trace` under `design` to completion and captures the committed
/// architectural state: instruction count, the whole register file, and
/// the memory slots the random programs store to.
fn arch_state(design: SqDesign, trace: &Trace) -> (u64, Vec<u64>, Vec<u64>) {
    let mut p = Processor::new(SimConfig::with_design(design), trace);
    while p.step().expect("no deadlock") == StepOutcome::Running {}
    let regs = (0..sqip_isa::NUM_REGS as u8)
        .map(|r| p.committed_reg(Reg::new(r)))
        .collect();
    let mem = (0..24u64)
        .map(|slot| p.committed_mem(Addr::new(0x400 + 8 * slot), DataSize::Quad))
        .collect();
    (p.stats().committed, regs, mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The central soundness property: any program, any design — the
    /// pipeline commits the exact golden instruction stream and never
    /// deadlocks, flushes notwithstanding.
    #[test]
    fn random_programs_commit_fully_under_every_design(
        body in proptest::collection::vec(stmt_strategy(), 4..28),
        iters in 20i64..80,
    ) {
        let trace = build_trace(&body, iters);
        for design in SqDesign::ALL {
            let stats = Processor::new(SimConfig::with_design(design), &trace).run();
            prop_assert_eq!(stats.committed, trace.len() as u64, "{}", design);
            prop_assert_eq!(
                stats.loads, trace.dynamic_loads(), "{} load count", design
            );
        }
    }

    /// Oracle scheduling never mis-speculates, for any program.
    #[test]
    fn oracle_never_flushes_on_random_programs(
        body in proptest::collection::vec(stmt_strategy(), 4..28),
        iters in 20i64..60,
    ) {
        let trace = build_trace(&body, iters);
        let stats = Processor::new(SimConfig::with_design(SqDesign::IdealOracle), &trace).run();
        prop_assert_eq!(stats.flushes, 0);
        prop_assert_eq!(stats.mis_forwards, 0);
    }

    /// Timing policies must never change *values*: every design — the
    /// seven builtins and the registry-added `indexed-5-fwd+dly` — commits
    /// an identical architectural (register + memory) state on any
    /// program, however differently it schedules, forwards and flushes.
    #[test]
    fn all_designs_commit_identical_architectural_state(
        body in proptest::collection::vec(stmt_strategy(), 4..28),
        iters in 20i64..60,
    ) {
        let trace = build_trace(&body, iters);
        let mut designs: Vec<SqDesign> = SqDesign::ALL.to_vec();
        designs.push("indexed-5-fwd+dly".parse().expect("extension registered"));
        let reference = arch_state(designs[0], &trace);
        for &design in &designs[1..] {
            let got = arch_state(design, &trace);
            prop_assert_eq!(&got, &reference, "{} diverges architecturally", design);
        }
    }

    /// The streaming input path is not a different simulator: pulling the
    /// same program through `ProgramSource` (no materialized trace, no
    /// whole-trace oracle pass, O(window) memory) must produce
    /// bit-identical `SimStats` to the materialized run, for every
    /// builtin design, on any program.
    #[test]
    fn streamed_execution_is_bit_identical_to_materialized(
        body in proptest::collection::vec(stmt_strategy(), 4..28),
        iters in 20i64..60,
    ) {
        let program = build_program(&body, iters);
        let trace = trace_program(&program, 1_000_000).unwrap();
        for design in SqDesign::ALL {
            let cfg = SimConfig::with_design(design);
            let materialized = Processor::new(cfg.clone(), &trace).run();
            let source = ProgramSource::new(program.clone(), 1_000_000);
            let streamed = Processor::from_source(cfg, source).run();
            prop_assert_eq!(&streamed, &materialized, "{} diverges when streamed", design);
        }
    }

    /// **The differential property pinning the event engine.** The
    /// event-driven engine (ring slabs, event wheel, idle-cycle
    /// skip-ahead) and the frozen per-cycle reference stepper are two
    /// implementations of the same machine: on any random program, under
    /// every builtin design (plus the registry extension) and a random
    /// machine geometry, their `SimStats` must be **bit-identical** —
    /// cycle counts included, skip-ahead notwithstanding.
    #[test]
    fn event_engine_matches_reference_engine_bit_for_bit(
        body in proptest::collection::vec(stmt_strategy(), 4..28),
        iters in 20i64..60,
        knobs in config_knobs_strategy(),
    ) {
        let trace = build_trace(&body, iters);
        let mut designs: Vec<SqDesign> = SqDesign::ALL.to_vec();
        designs.push("indexed-5-fwd+dly".parse().expect("extension registered"));
        for design in designs {
            let cfg = knobs.apply(SimConfig::with_design(design));
            cfg.try_validate().expect("generated config is valid");
            let event = {
                let mut c = cfg.clone();
                c.engine = Engine::Event;
                Processor::new(c, &trace).try_run().expect("event engine runs")
            };
            let reference = {
                let mut c = cfg.clone();
                c.engine = Engine::Reference;
                Processor::new(c, &trace).try_run().expect("reference engine runs")
            };
            prop_assert_eq!(
                &event, &reference,
                "engines diverge under {} with {:?}", design, knobs
            );
        }
    }

    /// **The differential property pinning the fused scheduler.** The
    /// event engine's two scheduling shapes — fused (near rings + store
    /// FIFO, zero wheel events on the issue hot path) and wheel-only
    /// (every Exec, broadcast and store wake on the wheel, PR 9's
    /// shape) — must be **bit-identical** on any random program, under
    /// every builtin design (plus the registry extension) and a random
    /// machine geometry. With `issue_to_exec` ranging down to 0 this
    /// also pins the past-event clamping path against the fused drain
    /// order.
    #[test]
    fn fused_scheduling_matches_wheel_only_bit_for_bit(
        body in proptest::collection::vec(stmt_strategy(), 4..28),
        iters in 20i64..60,
        knobs in config_knobs_strategy(),
    ) {
        let trace = build_trace(&body, iters);
        let mut designs: Vec<SqDesign> = SqDesign::ALL.to_vec();
        designs.push("indexed-5-fwd+dly".parse().expect("extension registered"));
        for design in designs {
            let mut cfg = knobs.apply(SimConfig::with_design(design));
            cfg.engine = Engine::Event;
            cfg.try_validate().expect("generated config is valid");
            let fused = Processor::new(cfg.clone(), &trace)
                .try_run()
                .expect("fused run");
            let wheel_only = {
                let mut p = Processor::new(cfg.clone(), &trace);
                p.set_wheel_only_scheduling(true);
                p.try_run().expect("wheel-only run")
            };
            prop_assert_eq!(
                &fused, &wheel_only,
                "scheduling shapes diverge under {} with {:?}", design, knobs
            );
        }
    }

    /// The same differential property under the LQ-CAM ordering scheme
    /// (mid-window squashes instead of full flushes), for the
    /// associative designs that support it.
    #[test]
    fn event_engine_matches_reference_engine_under_lq_cam(
        body in proptest::collection::vec(stmt_strategy(), 4..28),
        iters in 20i64..60,
        knobs in config_knobs_strategy(),
    ) {
        let trace = build_trace(&body, iters);
        for design in [
            SqDesign::IdealOracle,
            SqDesign::Associative3StoreSets,
            SqDesign::Associative3,
        ] {
            let mut cfg = knobs.apply(SimConfig::with_design(design));
            cfg.ordering = OrderingMode::LqCam;
            cfg.try_validate().expect("generated config is valid");
            let event = {
                let mut c = cfg.clone();
                c.engine = Engine::Event;
                Processor::new(c, &trace).try_run().expect("event engine runs")
            };
            let reference = {
                let mut c = cfg.clone();
                c.engine = Engine::Reference;
                Processor::new(c, &trace).try_run().expect("reference engine runs")
            };
            prop_assert_eq!(
                &event, &reference,
                "engines diverge under {}/cam with {:?}", design, knobs
            );
        }
    }

    /// Wrap-around drains are transparent to correctness.
    #[test]
    fn ssn_wraps_are_transparent(
        body in proptest::collection::vec(stmt_strategy(), 8..20),
        iters in 40i64..80,
    ) {
        let trace = build_trace(&body, iters);
        let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        cfg.ssn_bits = 8;
        let stats = Processor::new(cfg, &trace).run();
        prop_assert_eq!(stats.committed, trace.len() as u64);
    }
}
