//! Checkpoint/resume: container robustness (truncation, corruption,
//! foreign versions — typed errors, never panics) and the bit-identity
//! property — running straight through equals checkpointing at an
//! arbitrary point and resuming, for every design under both engines.

use proptest::prelude::*;
use sqip_core::{Engine, Processor, SimConfig, SimStats, SqDesign, StepOutcome};
use sqip_isa::{Program, ProgramBuilder, ProgramSource, Reg};
use sqip_snapshot::SnapError;
use sqip_types::DataSize;

/// A store/load-heavy loop long enough to checkpoint mid-flight.
fn workload(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (ctr, v, w) = (Reg::new(1), Reg::new(2), Reg::new(3));
    b.load_imm(ctr, iters);
    b.load_imm(v, 7);
    let top = b.label("top");
    b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
    b.load(DataSize::Quad, w, Reg::ZERO, 0x100);
    b.add_imm(v, w, 3);
    b.store(DataSize::Word, v, Reg::ZERO, 0x208);
    b.load(DataSize::Word, w, Reg::ZERO, 0x208);
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    b.build().unwrap()
}

fn source(program: &Program) -> ProgramSource {
    ProgramSource::new(program.clone(), 1_000_000)
}

/// Runs `steps` processor steps (or to completion), then checkpoints.
fn checkpoint_after(cfg: &SimConfig, program: &Program, steps: usize) -> Vec<u8> {
    let mut p = Processor::from_source(cfg.clone(), source(program));
    for _ in 0..steps {
        if p.step().unwrap() == StepOutcome::Done {
            break;
        }
    }
    let mut snap = Vec::new();
    p.checkpoint(&mut snap).unwrap();
    snap
}

fn finish(mut p: Processor<'_>) -> SimStats {
    while p.step().unwrap() == StepOutcome::Running {}
    p.stats().clone()
}

#[test]
fn truncated_checkpoints_are_rejected_not_panicked() {
    let program = workload(50);
    let cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
    let snap = checkpoint_after(&cfg, &program, 40);
    // Every proper prefix must fail with a typed error; sample densely at
    // the container boundaries and sparsely through the payload.
    let cuts: Vec<usize> = (0..32.min(snap.len()))
        .chain((32..snap.len()).step_by(97))
        .collect();
    for cut in cuts {
        let err = Processor::restore(&mut &snap[..cut], source(&program))
            .err()
            .unwrap_or_else(|| panic!("truncation at {cut} must not restore"));
        assert!(
            matches!(err, SnapError::Truncated { .. } | SnapError::Corrupt(_)),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn corrupt_payload_bytes_are_rejected() {
    let program = workload(50);
    let cfg = SimConfig::with_design(SqDesign::Associative3);
    let snap = checkpoint_after(&cfg, &program, 40);
    // Flip one byte in the payload (past the 24-byte header): the
    // checksum must catch it.
    for &at in &[24usize, snap.len() / 2, snap.len() - 1] {
        let mut bad = snap.clone();
        bad[at] ^= 0x40;
        let err = Processor::restore(&mut bad.as_slice(), source(&program))
            .expect_err("corruption must not restore");
        assert!(
            matches!(err, SnapError::ChecksumMismatch { .. }),
            "flip at {at}: unexpected error {err:?}"
        );
    }
}

#[test]
fn foreign_version_and_magic_are_rejected() {
    let program = workload(50);
    let cfg = SimConfig::with_design(SqDesign::Indexed3Fwd);
    let snap = checkpoint_after(&cfg, &program, 40);

    let mut future = snap.clone();
    future[4] = 0xEE; // format version field (little-endian u32 at 4..8)
    let err = Processor::restore(&mut future.as_slice(), source(&program))
        .expect_err("foreign version must not restore");
    assert!(
        matches!(err, SnapError::UnsupportedVersion { .. }),
        "unexpected error {err:?}"
    );

    let mut alien = snap;
    alien[0..4].copy_from_slice(b"NOPE");
    let err = Processor::restore(&mut alien.as_slice(), source(&program))
        .expect_err("bad magic must not restore");
    assert!(
        matches!(err, SnapError::BadMagic { .. }),
        "unexpected {err:?}"
    );
}

#[test]
fn short_source_on_restore_is_a_source_error() {
    let program = workload(200);
    let cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
    let snap = checkpoint_after(&cfg, &program, 300);
    // Resuming over a much shorter instance of "the same" workload: the
    // fast-forward must run out of records and say so.
    let err = Processor::restore(&mut snap.as_slice(), source(&workload(2)))
        .expect_err("short source must not restore");
    assert!(matches!(err, SnapError::Source(_)), "unexpected {err:?}");
}

#[test]
fn shared_analysis_processors_refuse_to_checkpoint() {
    let program = workload(20);
    let (tap, feed) = sqip_core::oracle_tap(source(&program), 4096);
    let (_tee, cursors) = sqip_isa::TraceTee::new(tap, 1, 4096);
    let cfg = SimConfig::with_design(SqDesign::Associative3);
    let cursor = cursors.into_iter().next().unwrap();
    let mut p = Processor::try_from_shared(cfg, cursor, feed).unwrap();
    p.step().unwrap();
    let mut out = Vec::new();
    let err = p.checkpoint(&mut out).expect_err("must refuse");
    assert!(
        matches!(err, SnapError::Unsupported(_)),
        "unexpected {err:?}"
    );
}

#[test]
fn checkpoint_bytes_are_deterministic_and_restore_round_trips() {
    let program = workload(120);
    for engine in [Engine::Event, Engine::Reference] {
        let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        cfg.engine = engine;
        let a = checkpoint_after(&cfg, &program, 250);
        let b = checkpoint_after(&cfg, &program, 250);
        assert_eq!(a, b, "{engine:?}: equal states, equal bytes");

        // Restore, immediately re-checkpoint: full-fidelity round trip.
        let p = Processor::restore(&mut a.as_slice(), source(&program)).unwrap();
        let mut again = Vec::new();
        p.checkpoint(&mut again).unwrap();
        assert_eq!(a, again, "{engine:?}: restore→checkpoint round trip");
    }
}

#[test]
fn checkpoint_at_completion_resumes_done() {
    let program = workload(30);
    let cfg = SimConfig::with_design(SqDesign::Associative3);
    let straight = Processor::from_source(cfg.clone(), source(&program))
        .try_run()
        .unwrap();
    let snap = checkpoint_after(&cfg, &program, usize::MAX);
    let p = Processor::restore(&mut snap.as_slice(), source(&program)).unwrap();
    assert!(p.is_done(), "a finished run restores finished");
    assert_eq!(finish(p), straight);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// **The resume bit-identity property.** For every design (the seven
    /// paper builtins plus the registry extension), under both engines:
    /// checkpointing after an arbitrary number of steps and resuming in a
    /// fresh processor over a fresh source yields `SimStats`
    /// bit-identical to never having stopped.
    #[test]
    fn resume_is_bit_identical_to_running_straight(
        iters in 10i64..60,
        steps in 0usize..600,
    ) {
        let program = workload(iters);
        let mut designs: Vec<SqDesign> = SqDesign::ALL.to_vec();
        designs.push("indexed-5-fwd+dly".parse().expect("extension registered"));
        for design in designs {
            for engine in [Engine::Event, Engine::Reference] {
                let mut cfg = SimConfig::with_design(design);
                cfg.engine = engine;
                let straight = Processor::from_source(cfg.clone(), source(&program))
                    .try_run()
                    .unwrap();
                let snap = checkpoint_after(&cfg, &program, steps);
                let resumed = Processor::restore(&mut snap.as_slice(), source(&program))
                    .expect("restore");
                let stitched = finish(resumed);
                prop_assert_eq!(
                    &stitched, &straight,
                    "{} / {:?} diverges after resume at step {}",
                    design, engine, steps
                );
            }
        }
    }
}
