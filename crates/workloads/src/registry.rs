//! The global workload registry: name → streaming trace-source factory.
//!
//! The exact mirror of `sqip-core`'s `DesignRegistry` on the workload
//! axis: every workload is a *name* that resolves to a factory producing
//! a fresh [`TraceSource`] per run. The [`WorkloadRegistry::global`]
//! instance is pre-populated with the 47 Table 3 benchmark models plus a
//! catalogue of parameterized generator instances (including the
//! `stream-10m` scale proof — a ten-million-instruction kernel mix no
//! materialized trace could reasonably hold), and accepts custom
//! registrations at any time. Names that are not registered but match the
//! generator grammar (`mix:…`, `chase:…`, `stride:…` — see
//! [`crate::generator`]) resolve on the fly, so the axis is open in both
//! senses: register anything, or just *name* a point in generator space.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use sqip_isa::{IsaError, TraceSource};

use crate::generator;
use crate::spec::{Suite, WorkloadSpec};
use crate::suite::all_workloads;

/// A shareable trace-source constructor: one fresh stream per run.
pub type SourceFactory =
    Arc<dyn Fn() -> Result<Box<dyn TraceSource + Send>, IsaError> + Send + Sync>;

/// Interns a workload name, returning a `'static` handle that is pointer-
/// and value-stable for the life of the process — the same scheme the
/// design registry uses for `SqDesign` names. Two resolutions of the same
/// name (registered entry or generator-grammar point) intern to the same
/// handle, which is what lets a sweep engine group same-workload cells
/// without string churn on the dispatch path. The pool is append-only and
/// deduplicated, so the leak is bounded by the set of distinct names ever
/// used.
#[must_use]
pub fn intern_name(name: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("intern pool poisoned");
    if let Some(&interned) = pool.get(name) {
        return interned;
    }
    let interned: &'static str = Box::leak(name.to_owned().into_boxed_str());
    pool.insert(interned);
    interned
}

/// A failure registering or resolving a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadRegistryError {
    /// A workload with this name is already registered.
    Duplicate(String),
    /// No workload with this name is registered, and the name is not in
    /// the generator grammar.
    Unknown(String),
    /// The name matched a generator family (`mix:…`, `chase:…`,
    /// `stride:…`) but its parameters are malformed — reported
    /// separately from [`WorkloadRegistryError::Unknown`] so a typo'd
    /// parameter explains itself instead of claiming the whole name is
    /// unrecognised.
    InvalidGenerator {
        /// The name as given.
        name: String,
        /// What was wrong with its parameters.
        cause: crate::generator::GeneratorError,
    },
}

impl std::fmt::Display for WorkloadRegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadRegistryError::Duplicate(name) => {
                write!(f, "workload `{name}` is already registered")
            }
            WorkloadRegistryError::Unknown(name) => {
                write!(
                    f,
                    "unknown workload `{name}` (not registered, and not a \
                     `mix:`/`chase:`/`stride:`/`tracefile:` name)"
                )
            }
            WorkloadRegistryError::InvalidGenerator { name, cause } => {
                write!(f, "workload `{name}`: {cause}")
            }
        }
    }
}

impl std::error::Error for WorkloadRegistryError {}

/// A resolved registry entry: metadata plus the factory that opens a
/// fresh record stream for each simulation run.
#[derive(Clone)]
pub struct RegisteredWorkload {
    name: &'static str,
    suite: Option<Suite>,
    description: String,
    factory: SourceFactory,
}

impl RegisteredWorkload {
    /// Wraps a [`WorkloadSpec`] as a registrable streaming workload.
    #[must_use]
    pub fn from_spec(spec: WorkloadSpec) -> RegisteredWorkload {
        let description = format!(
            "synthetic kernel mix, ~{} dynamic insts, target fwd rate {:.2}",
            approx(u64::from(spec.iterations) * u64::from(spec.estimated_insts_per_iter())),
            spec.target_forwarding_rate()
        );
        RegisteredWorkload {
            name: intern_name(&spec.name),
            suite: Some(spec.suite),
            description,
            factory: Arc::new(move || {
                spec.source()
                    .map(|s| Box::new(s) as Box<dyn TraceSource + Send>)
            }),
        }
    }

    /// Builds an entry from scratch: any factory that can produce a
    /// record stream (a trace-file reader, a custom generator, a
    /// synthesised pattern).
    pub fn from_factory(
        name: impl Into<String>,
        description: impl Into<String>,
        factory: impl Fn() -> Result<Box<dyn TraceSource + Send>, IsaError> + Send + Sync + 'static,
    ) -> RegisteredWorkload {
        RegisteredWorkload {
            name: intern_name(&name.into()),
            suite: None,
            description: description.into(),
            factory: Arc::new(factory),
        }
    }

    /// The workload's name (its registry key and result-record label),
    /// interned for the life of the process — pointer-stable, so sweep
    /// grouping and trace-cache keys need no per-cell `String` clones.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The suite grouping, for workloads modelling a Table 3 row.
    #[must_use]
    pub fn suite(&self) -> Option<Suite> {
        self.suite
    }

    /// A one-line description for roster listings.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Opens a fresh record stream for one simulation run.
    ///
    /// # Errors
    ///
    /// Whatever the factory reports (assembler errors, trace-file I/O).
    pub fn open(&self) -> Result<Box<dyn TraceSource + Send>, IsaError> {
        (self.factory)()
    }
}

impl std::fmt::Debug for RegisteredWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisteredWorkload")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("description", &self.description)
            .finish_non_exhaustive()
    }
}

/// Builds the `tracefile:<path>` workload: each open streams the SQTR
/// file from the start through a fresh buffered [`TraceReader`] — the
/// decode-dominant workload family (per-byte varint decode on every
/// pull), where a shared-decode sweep pass pays off most.
///
/// [`TraceReader`]: sqip_isa::tracefile::TraceReader
fn trace_file_workload(name: &str, path: &str) -> RegisteredWorkload {
    let path = std::path::PathBuf::from(path);
    let description = format!("on-disk SQTR trace `{}`", path.display());
    RegisteredWorkload::from_factory(name, description, move || {
        let file = std::fs::File::open(&path).map_err(|e| IsaError::TraceIo {
            detail: format!("opening trace file `{}`: {e}", path.display()),
        })?;
        let reader = sqip_isa::tracefile::TraceReader::new(std::io::BufReader::new(file))?;
        Ok(Box::new(reader) as Box<dyn TraceSource + Send>)
    })
}

fn approx(n: u64) -> String {
    match n {
        0..=9_999 => n.to_string(),
        10_000..=1_999_999 => format!("{}K", n / 1_000),
        _ => format!("{}M", n.div_ceil(1_000_000)),
    }
}

#[derive(Default)]
struct Inner {
    entries: HashMap<&'static str, RegisteredWorkload>,
    /// Registration order, for stable `names()` listings.
    order: Vec<&'static str>,
}

/// The open roster of workloads (see the module docs).
///
/// # Example
///
/// Registering a runtime-defined workload and streaming it — the same
/// two-step flow `DesignRegistry` uses on the design axis:
///
/// ```
/// use sqip_workloads::{generator, WorkloadRegistry};
///
/// let registry = WorkloadRegistry::global();
/// let spec = generator::pointer_chase(512, 64, 50_000).with_name("my-chase");
/// registry.register_spec(spec)?;
///
/// let workload = registry.resolve("my-chase")?;
/// let mut stream = workload.open()?;
/// assert!(sqip_isa::TraceSource::next_record(&mut stream)?.is_some());
///
/// // Generator-grammar names resolve without any registration:
/// assert!(registry.resolve("mix:0x5eed:100k").is_ok());
/// assert!(registry.resolve("no-such-workload").is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct WorkloadRegistry {
    inner: RwLock<Inner>,
}

impl WorkloadRegistry {
    /// An empty registry (no builtins). Most callers want
    /// [`WorkloadRegistry::global`]; isolated registries exist for tests
    /// of the registry itself.
    #[must_use]
    pub fn empty() -> WorkloadRegistry {
        WorkloadRegistry {
            inner: RwLock::new(Inner::default()),
        }
    }

    /// The process-wide registry, pre-populated with the 47 Table 3
    /// benchmark models and the generator catalogue (all registered
    /// through the same public API any caller can use).
    pub fn global() -> &'static WorkloadRegistry {
        static GLOBAL: OnceLock<WorkloadRegistry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let registry = WorkloadRegistry::empty();
            for spec in all_workloads() {
                registry
                    .register_spec(spec)
                    .expect("table 3 workload names are unique");
            }
            // Generator-catalogue samples: one instance per family, so
            // listings advertise the families; any other point in the
            // space resolves dynamically by grammar.
            for spec in [
                generator::random_mix(0x5eed, 1_000_000),
                generator::pointer_chase(4096, 4096, 1_000_000),
                generator::stride_stream(4096, 1_000_000),
            ] {
                registry
                    .register_spec(spec)
                    .expect("catalogue names are unique");
            }
            // The scale proof: a workload inexpressible as a materialized
            // trace on a laptop-class machine — ten million dynamic
            // instructions, streamed through the simulator in O(window)
            // memory. Registered through the exact same public API a
            // downstream crate would use.
            registry
                .register_spec(
                    generator::random_mix(0x10_000_000, 10_000_000).with_name("stream-10m"),
                )
                .expect("stream-10m name is unique");
            registry
        })
    }

    /// Registers a workload. Unlike designs, workloads are pure data
    /// (there is no handle to mint), so this returns the entry's name.
    ///
    /// # Errors
    ///
    /// [`WorkloadRegistryError::Duplicate`] if the name is taken.
    pub fn register(&self, workload: RegisteredWorkload) -> Result<String, WorkloadRegistryError> {
        let name = workload.name;
        let mut inner = self.inner.write().expect("registry lock poisoned");
        if inner.entries.contains_key(name) {
            return Err(WorkloadRegistryError::Duplicate(name.to_string()));
        }
        inner.order.push(name);
        inner.entries.insert(name, workload);
        Ok(name.to_string())
    }

    /// Registers a [`WorkloadSpec`] as a streaming workload under its own
    /// name — the one-liner path for spec-shaped workloads (Table 3
    /// models, generator outputs, hand-built mixes).
    ///
    /// # Errors
    ///
    /// [`WorkloadRegistryError::Duplicate`] if the name is taken.
    pub fn register_spec(&self, spec: WorkloadSpec) -> Result<String, WorkloadRegistryError> {
        self.register(RegisteredWorkload::from_spec(spec))
    }

    /// Resolves a workload name: a registered entry; a generator-grammar
    /// point (`mix:…`, `chase:…`, `stride:…`) built on the fly; or an
    /// on-disk trace file (`tracefile:<path>`, SQTR format) streamed
    /// through [`sqip_isa::tracefile::TraceReader`].
    ///
    /// # Errors
    ///
    /// [`WorkloadRegistryError::Unknown`] if the name is none of those;
    /// [`WorkloadRegistryError::InvalidGenerator`] if a generator family
    /// matched but its parameters are malformed. A `tracefile:` path is
    /// not opened here — a missing or corrupt file surfaces as an
    /// [`IsaError`] from [`RegisteredWorkload::open`].
    pub fn resolve(&self, name: &str) -> Result<RegisteredWorkload, WorkloadRegistryError> {
        if let Some(entry) = self.lookup(name) {
            return Ok(entry);
        }
        if let Some(path) = name.strip_prefix("tracefile:") {
            return Ok(trace_file_workload(name, path));
        }
        match generator::parse_generator(name) {
            Ok(Some(spec)) => Ok(RegisteredWorkload::from_spec(spec)),
            Ok(None) => Err(WorkloadRegistryError::Unknown(name.to_string())),
            Err(cause) => Err(WorkloadRegistryError::InvalidGenerator {
                name: name.to_string(),
                cause,
            }),
        }
    }

    /// Looks up a *registered* workload (no generator-grammar fallback).
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<RegisteredWorkload> {
        let inner = self.inner.read().expect("registry lock poisoned");
        inner.entries.get(name).cloned()
    }

    /// All registered workload names, in registration order (the Table 3
    /// roster first).
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        let inner = self.inner.read().expect("registry lock poisoned");
        inner.order.clone()
    }
}

impl std::fmt::Debug for WorkloadRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadRegistry")
            .field("workloads", &self.names().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_has_the_table3_roster_and_the_catalogue() {
        let names = WorkloadRegistry::global().names();
        assert!(names.len() >= 47 + 4, "{} names", names.len());
        for expect in ["gzip", "mesa.t", "wupwise", "stream-10m"] {
            assert!(names.contains(&expect), "missing `{expect}`");
        }
        let gzip = WorkloadRegistry::global().lookup("gzip").unwrap();
        assert_eq!(gzip.suite(), Some(Suite::Int));
    }

    #[test]
    fn resolve_falls_back_to_the_generator_grammar() {
        let r = WorkloadRegistry::empty();
        let w = r.resolve("chase:128:64:10k").unwrap();
        assert_eq!(w.name(), "chase:128:64:10k");
        assert_eq!(
            r.resolve("nope").unwrap_err(),
            WorkloadRegistryError::Unknown("nope".to_string())
        );
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let r = WorkloadRegistry::empty();
        r.register_spec(WorkloadSpec::base("dup", Suite::Int))
            .unwrap();
        assert_eq!(
            r.register_spec(WorkloadSpec::base("dup", Suite::Fp))
                .unwrap_err(),
            WorkloadRegistryError::Duplicate("dup".to_string())
        );
    }

    #[test]
    fn opened_streams_are_independent() {
        use sqip_isa::TraceSource;
        let r = WorkloadRegistry::empty();
        r.register_spec(WorkloadSpec::base("w", Suite::Int).with_iterations(5))
            .unwrap();
        let entry = r.lookup("w").unwrap();
        let mut a = entry.open().unwrap();
        let mut b = entry.open().unwrap();
        let first = a.next_record().unwrap();
        for _ in 0..10 {
            a.next_record().unwrap();
        }
        assert_eq!(
            b.next_record().unwrap(),
            first,
            "streams do not share state"
        );
    }

    #[test]
    fn invalid_generator_parameters_explain_themselves() {
        let r = WorkloadRegistry::empty();
        match r.resolve("mix:1:20000000000b").unwrap_err() {
            WorkloadRegistryError::InvalidGenerator { name, cause } => {
                assert_eq!(name, "mix:1:20000000000b");
                assert!(cause.detail.contains("overflows"), "{cause}");
            }
            other => panic!("expected InvalidGenerator, got: {other}"),
        }
        for bad in ["mix:1:0", "stride:x:1m", "chase:64:1m"] {
            assert!(
                matches!(
                    r.resolve(bad).unwrap_err(),
                    WorkloadRegistryError::InvalidGenerator { .. }
                ),
                "`{bad}` is malformed, not unknown"
            );
        }
        // Names outside every grammar stay plain Unknown.
        assert!(matches!(
            r.resolve("warp:10:1m").unwrap_err(),
            WorkloadRegistryError::Unknown(_)
        ));
    }

    #[test]
    fn tracefile_workloads_resolve_and_stream() {
        use sqip_isa::TraceSource;

        // Record a small stream to disk, then resolve it back by name.
        let spec = WorkloadSpec::base("inner", Suite::Int).with_iterations(3);
        let golden: Vec<_> = {
            let mut s = spec.source().unwrap();
            let mut v = Vec::new();
            while let Some(rec) = s.next_record().unwrap() {
                v.push(rec);
            }
            v
        };
        let path = std::env::temp_dir().join(format!(
            "sqip-registry-tracefile-{}.sqtr",
            std::process::id()
        ));
        let mut file = std::fs::File::create(&path).unwrap();
        sqip_isa::tracefile::record_trace(&mut spec.source().unwrap(), &mut file).unwrap();
        drop(file);

        let r = WorkloadRegistry::empty();
        let name = format!("tracefile:{}", path.display());
        let w = r.resolve(&name).unwrap();
        assert_eq!(w.name(), name.as_str());
        assert_eq!(w.suite(), None);
        let mut replay = w.open().unwrap();
        let mut n = 0usize;
        while let Some(rec) = replay.next_record().unwrap() {
            assert_eq!(rec, golden[n], "record {n} replays bit-identically");
            n += 1;
        }
        assert_eq!(n, golden.len());
        std::fs::remove_file(&path).ok();

        // A missing file resolves (the name is well-formed) but fails to
        // open, like any other workload whose backing store is broken.
        let missing = r.resolve("tracefile:/no/such/file.sqtr").unwrap();
        assert!(missing.open().is_err());
    }

    #[test]
    fn custom_factories_register() {
        let r = WorkloadRegistry::empty();
        let spec = WorkloadSpec::base("inner", Suite::Int).with_iterations(3);
        r.register(RegisteredWorkload::from_factory(
            "custom",
            "a from-scratch factory",
            move || {
                spec.source()
                    .map(|s| Box::new(s) as Box<dyn sqip_isa::TraceSource + Send>)
            },
        ))
        .unwrap();
        let w = r.resolve("custom").unwrap();
        assert_eq!(w.suite(), None);
        assert!(w.open().is_ok());
    }
}
