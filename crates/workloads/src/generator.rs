//! Parameterized workload generators: the open, *scalable* half of the
//! workload axis.
//!
//! Where the Table 3 roster models fixed benchmarks, these generators
//! take parameters — a seed, a footprint, a target dynamic length — and
//! produce a [`WorkloadSpec`] at any scale. Combined with streaming
//! execution ([`WorkloadSpec::source`]) they make multi-million- (or
//! multi-billion-)instruction runs practical: nothing is ever
//! materialized.
//!
//! Each generator has a canonical *name grammar* so it can be summoned
//! from a CLI flag or config file without prior registration —
//! [`parse_generator`] turns such a name back into a spec, and
//! [`WorkloadRegistry::resolve`](crate::WorkloadRegistry::resolve) falls
//! back to it for names that are not in the registry:
//!
//! | grammar | meaning |
//! |---|---|
//! | `mix:<seed>:<insts>` | seeded random kernel mix (`mix:0xbeef:10m`) |
//! | `chase:<nodes>:<stride>:<insts>` | pointer chase over a ring (`chase:4096:64:1m`) |
//! | `stride:<stride>:<insts>` | strided load stream (`stride:4096:500k`) |
//!
//! `<insts>` accepts `k`/`m`/`b` suffixes; `<seed>` accepts `0x` hex.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::{Suite, WorkloadSpec};

/// A seeded random kernel mix of about `target_insts` dynamic
/// instructions: site counts for every kernel the Table 3 models are
/// built from (forwarding pairs, narrow/partial overlaps, aliases,
/// recurrences, far pairs, chases, branches, FP chains) are drawn from
/// `seed`, so each seed is a distinct program with a distinct
/// memory-dependence profile.
#[must_use]
pub fn random_mix(seed: u64, target_insts: u64) -> WorkloadSpec {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6d69_785f_6765_6e21);
    let mut w = WorkloadSpec::base(mix_name(seed, target_insts), Suite::Int);
    w.seed = seed;
    w.fwd_sites = rng.gen_range(0..6);
    w.narrow_sites = rng.gen_range(0..3);
    w.partial_sites = rng.gen_range(0..2);
    w.alias_sites = rng.gen_range(0..3);
    w.nmr_sites = rng.gen_range(0..3);
    w.nmr_lag = rng.gen_range(2..9);
    w.far_sites = rng.gen_range(0..3);
    w.plain_loads = rng.gen_range(4..28);
    w.plain_stores = rng.gen_range(1..6);
    w.chase_loads = rng.gen_range(0..3);
    w.chase_nodes = 1 << rng.gen_range(6..12);
    w.chase_stride = 1 << rng.gen_range(4..13);
    w.random_branches = rng.gen_range(0..3);
    w.pattern_branches = rng.gen_range(1..4);
    w.fp_chain = rng.gen_range(0..5);
    w.int_filler = rng.gen_range(2..12);
    w.sized_for_insts(target_insts)
}

/// A pointer chase over a ring of `nodes` nodes spaced `stride` bytes
/// apart, sized to about `target_insts` dynamic instructions. Large
/// `nodes × stride` footprints defeat the TLB and caches; the chase
/// itself produces serially dependent loads.
#[must_use]
pub fn pointer_chase(nodes: u32, stride: u32, target_insts: u64) -> WorkloadSpec {
    let mut w = WorkloadSpec::base(chase_name(nodes, stride, target_insts), Suite::Int);
    w.chase_loads = 4;
    w.chase_nodes = nodes.max(2);
    w.chase_stride = stride.max(8);
    w.plain_loads = 2;
    w.plain_stores = 1;
    w.int_filler = 2;
    w.sized_for_insts(target_insts)
}

/// A strided streaming-load kernel: back-to-back independent loads
/// marching through memory `stride` bytes at a time (a ring, so the
/// footprint is `stride × 4096` bytes), sized to about `target_insts`
/// dynamic instructions. No forwarding at all — the pure
/// memory-bandwidth corner of the workload space.
#[must_use]
pub fn stride_stream(stride: u32, target_insts: u64) -> WorkloadSpec {
    // The chase ring doubles as a stride generator: nodes laid out
    // `stride` apart are visited in address order.
    let mut w = WorkloadSpec::base(stride_name(stride, target_insts), Suite::Int);
    w.chase_loads = 6;
    w.chase_nodes = 4096;
    w.chase_stride = stride.max(8);
    w.plain_loads = 8;
    w.plain_stores = 2;
    w.int_filler = 1;
    w.pattern_branches = 1;
    w.sized_for_insts(target_insts)
}

fn mix_name(seed: u64, insts: u64) -> String {
    format!("mix:{seed:#x}:{}", fmt_insts(insts))
}

fn chase_name(nodes: u32, stride: u32, insts: u64) -> String {
    format!("chase:{nodes}:{stride}:{}", fmt_insts(insts))
}

fn stride_name(stride: u32, insts: u64) -> String {
    format!("stride:{stride}:{}", fmt_insts(insts))
}

fn fmt_insts(n: u64) -> String {
    if n >= 1_000_000 && n.is_multiple_of(1_000_000) {
        format!("{}m", n / 1_000_000)
    } else if n >= 1_000 && n.is_multiple_of(1_000) {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}

/// A name that matched a generator family but whose parameters are
/// malformed — distinct from a name outside the grammar entirely, so
/// `mix:1:0` reports *why* it is invalid instead of masquerading as an
/// unknown workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorError {
    /// The family whose grammar matched (`mix`, `chase`, `stride`).
    pub family: &'static str,
    /// What was wrong, human-readable.
    pub detail: String,
}

impl std::fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid `{}:` generator parameters: {}",
            self.family, self.detail
        )
    }
}

impl std::error::Error for GeneratorError {}

/// Parses a generator name (`mix:…`, `chase:…`, `stride:…` — see the
/// module docs for the grammar) into its spec.
///
/// `Ok(None)` means the name is not in the generator grammar at all (the
/// registry then reports it as unknown); `Err` means a family matched
/// but its parameters are malformed — wrong arity, unparsable numbers, a
/// zero instruction count, or a count whose suffix overflows `u64`.
///
/// # Errors
///
/// [`GeneratorError`] describing the offending parameter.
pub fn parse_generator(name: &str) -> Result<Option<WorkloadSpec>, GeneratorError> {
    let mut parts = name.split(':');
    let Some(family) = parts.next() else {
        return Ok(None);
    };
    let args: Vec<&str> = parts.collect();
    let (family, grammar): (&'static str, &str) = match family {
        "mix" => ("mix", "mix:<seed>:<insts>"),
        "chase" => ("chase", "chase:<nodes>:<stride>:<insts>"),
        "stride" => ("stride", "stride:<stride>:<insts>"),
        _ => return Ok(None),
    };
    let bad = |detail: String| GeneratorError { family, detail };
    let num = |what: &str, s: &str| -> Result<u32, GeneratorError> {
        s.parse()
            .map_err(|_| bad(format!("{what} `{s}` is not a number")))
    };
    let spec = match (family, args.as_slice()) {
        ("mix", [seed, insts]) => random_mix(
            parse_seed(seed).map_err(&bad)?,
            parse_insts(insts).map_err(&bad)?,
        ),
        ("chase", [nodes, stride, insts]) => pointer_chase(
            num("node count", nodes)?,
            num("stride", stride)?,
            parse_insts(insts).map_err(&bad)?,
        ),
        ("stride", [stride, insts]) => {
            stride_stream(num("stride", stride)?, parse_insts(insts).map_err(&bad)?)
        }
        _ => return Err(bad(format!("`{name}` does not match `{grammar}`"))),
    };
    // Canonical naming aside, keep exactly what the user asked for so
    // registry listings and result records match the CLI spelling.
    Ok(Some(spec.with_name(name)))
}

fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("seed `{s}` is not a decimal or 0x-hex u64"))
}

fn parse_insts(s: &str) -> Result<u64, String> {
    let Some(last) = s.as_bytes().last() else {
        return Err("instruction count is empty".to_string());
    };
    let (digits, mult) = match last {
        b'k' | b'K' => (&s[..s.len() - 1], 1_000),
        b'm' | b'M' => (&s[..s.len() - 1], 1_000_000),
        b'b' | b'B' => (&s[..s.len() - 1], 1_000_000_000),
        _ => (s, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("instruction count `{s}` is not a number"))?;
    let scaled = n
        .checked_mul(mult)
        .ok_or_else(|| format!("instruction count `{s}` overflows u64"))?;
    if scaled == 0 {
        return Err(format!("instruction count `{s}` must be nonzero"));
    }
    Ok(scaled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_hit_their_target_length() {
        for (spec, target) in [
            (random_mix(0xbeef, 100_000), 100_000u64),
            (pointer_chase(512, 64, 80_000), 80_000),
            (stride_stream(4096, 60_000), 60_000),
        ] {
            let trace = spec
                .trace()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let len = trace.len() as u64;
            assert!(
                len > target / 2 && len < target * 2,
                "{}: {len} insts for target {target}",
                spec.name
            );
        }
    }

    #[test]
    fn distinct_seeds_are_distinct_programs() {
        let a = random_mix(1, 50_000);
        let b = random_mix(2, 50_000);
        assert_ne!(
            (a.fwd_sites, a.plain_loads, a.int_filler, a.chase_stride),
            (b.fwd_sites, b.plain_loads, b.int_filler, b.chase_stride),
        );
    }

    #[test]
    fn name_grammar_round_trips() {
        for name in ["mix:0xbeef:10m", "chase:4096:64:1m", "stride:4096:500k"] {
            let spec = parse_generator(name)
                .unwrap()
                .unwrap_or_else(|| panic!("{name} parses"));
            assert_eq!(spec.name, name);
        }
        // Canonical constructor names re-parse to equivalent specs.
        let spec = random_mix(0xbeef, 10_000_000);
        let reparsed = parse_generator(&spec.name).unwrap().unwrap();
        assert_eq!(reparsed.iterations, spec.iterations);
        assert_eq!(reparsed.plain_loads, spec.plain_loads);
    }

    #[test]
    fn names_outside_the_grammar_are_not_errors() {
        for other in ["gzip", "warp:10:1m", ""] {
            assert!(
                matches!(parse_generator(other), Ok(None)),
                "`{other}` is just unknown"
            );
        }
    }

    #[test]
    fn malformed_generator_parameters_are_described() {
        for (bad, expect) in [
            ("mix:0xbeef", "does not match"),    // missing length
            ("chase:64:1m", "does not match"),   // missing stride
            ("stride:x:1m", "is not a number"),  // junk number
            ("mix:zz:1m", "not a decimal"),      // junk seed
            ("mix:1:0", "must be nonzero"),      // zero length
            ("mix:1:20000000000b", "overflows"), // 2e10 × 1e9 wraps u64
            ("stride:4096:", "is empty"),        // empty count
        ] {
            let err = parse_generator(bad).unwrap_err();
            assert!(
                err.to_string().contains(expect),
                "`{bad}` → `{err}` (wanted `{expect}`)"
            );
        }
    }

    #[test]
    fn insts_suffixes_scale() {
        assert_eq!(parse_insts("500"), Ok(500));
        assert_eq!(parse_insts("500k"), Ok(500_000));
        assert_eq!(parse_insts("10m"), Ok(10_000_000));
        assert_eq!(parse_insts("2B"), Ok(2_000_000_000));
        assert!(parse_insts("").is_err());
        assert!(parse_insts("18446744073709551615").is_ok());
        assert!(parse_insts("18446744073709551615k").is_err());
    }
}
