//! The 47 named workloads — one per row of the paper's Table 3.
//!
//! Kernel mixes are chosen so each program's *architectural forwarding
//! rate* (Table 3 column 1) and pathology profile (not-most-recent
//! recurrences, FSP-set aliasing, far dependences, cache behaviour) land in
//! the regime the paper reports for that benchmark. Dynamic lengths are
//! normalised to ≈200K instructions per program.

use crate::spec::{Suite, WorkloadSpec};

/// Target dynamic instructions per workload.
const TARGET_DYN_INSTS: u64 = 200_000;

fn finalise(mut w: WorkloadSpec) -> WorkloadSpec {
    // Estimate instructions per outer iteration from the kernel mix and
    // size the iteration count to hit the target dynamic length.
    let est = w.estimated_insts_per_iter();
    w.iterations = (TARGET_DYN_INSTS / u64::from(est.max(1))).clamp(100, 20_000) as u32;
    w
}

fn w(name: &'static str, suite: Suite, f: impl FnOnce(&mut WorkloadSpec)) -> WorkloadSpec {
    let mut spec = WorkloadSpec::base(name, suite);
    spec.seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    f(&mut spec);
    finalise(spec)
}

/// The 18 MediaBench workloads.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn mediabench() -> Vec<WorkloadSpec> {
    use Suite::Media as M;
    vec![
        w("adpcm.d", M, |s| {
            s.plain_loads = 10;
            s.int_filler = 10;
            s.pattern_branches = 3;
        }),
        w("adpcm.e", M, |s| {
            s.plain_loads = 9;
            s.int_filler = 12;
            s.pattern_branches = 3;
        }),
        w("epic.e", M, |s| {
            s.fwd_sites = 1;
            s.plain_loads = 10;
            s.fp_chain = 2;
        }),
        w("epic.d", M, |s| {
            s.fwd_sites = 2;
            s.narrow_sites = 1;
            s.plain_loads = 13;
        }),
        w("g721.d", M, |s| {
            s.fwd_sites = 1;
            s.plain_loads = 12;
            s.pattern_branches = 2;
        }),
        w("g721.e", M, |s| {
            s.fwd_sites = 2;
            s.plain_loads = 16;
            s.far_sites = 1;
        }),
        w("gs.d", M, |s| {
            s.fwd_sites = 3;
            s.alias_sites = 1;
            s.nmr_lag = 4;
            s.nmr_sites = 1;
            s.plain_loads = 13;
            s.far_sites = 1;
        }),
        w("gsm.d", M, |s| {
            s.nmr_lag = 6;
            s.nmr_sites = 1;
            s.plain_loads = 30;
        }),
        w("gsm.e", M, |s| {
            s.nmr_lag = 5;
            s.nmr_sites = 1;
            s.narrow_sites = 1;
            s.plain_loads = 25;
        }),
        w("jpeg.d", M, |s| {
            s.nmr_lag = 8;
            s.nmr_sites = 1;
            s.plain_loads = 33;
            s.chase_loads = 2;
            s.chase_nodes = 512;
            s.replicate = 4;
        }),
        w("jpeg.e", M, |s| {
            s.fwd_sites = 2;
            s.narrow_sites = 1;
            s.plain_loads = 17;
        }),
        w("mesa.m", M, |s| {
            s.fwd_sites = 7;
            s.plain_loads = 9;
            s.fp_chain = 3;
        }),
        w("mesa.o", M, |s| {
            s.fwd_sites = 6;
            s.narrow_sites = 1;
            s.plain_loads = 11;
            s.fp_chain = 3;
        }),
        w("mesa.t", M, |s| {
            s.fwd_sites = 3;
            s.nmr_sites = 3;
            s.alias_sites = 1;
            s.plain_loads = 12;
            s.fp_chain = 3;
            s.replicate = 16;
        }),
        w("mpeg2.d", M, |s| {
            s.fwd_sites = 4;
            s.narrow_sites = 1;
            s.plain_loads = 15;
            s.replicate = 16;
        }),
        w("mpeg2.e", M, |s| {
            s.fwd_sites = 1;
            s.plain_loads = 20;
            s.fp_chain = 2;
        }),
        w("pegwit.d", M, |s| {
            s.fwd_sites = 1;
            s.nmr_lag = 6;
            s.nmr_sites = 1;
            s.plain_loads = 22;
        }),
        w("pegwit.e", M, |s| {
            s.nmr_lag = 4;
            s.nmr_sites = 2;
            s.plain_loads = 20;
        }),
    ]
}

/// The 16 SPECint workloads.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn specint() -> Vec<WorkloadSpec> {
    use Suite::Int as I;
    vec![
        w("bzip2", I, |s| {
            s.fwd_sites = 1;
            s.nmr_lag = 6;
            s.nmr_sites = 1;
            s.plain_loads = 15;
        }),
        w("crafty", I, |s| {
            s.fwd_sites = 1;
            s.plain_loads = 13;
            s.random_branches = 2;
        }),
        w("eon.c", I, |s| {
            s.alias_sites = 3;
            s.fwd_sites = 2;
            s.plain_loads = 13;
            s.replicate = 16;
        }),
        w("eon.k", I, |s| {
            s.alias_sites = 3;
            s.fwd_sites = 1;
            s.plain_loads = 15;
        }),
        w("eon.r", I, |s| {
            s.alias_sites = 3;
            s.fwd_sites = 2;
            s.plain_loads = 15;
        }),
        w("gap", I, |s| {
            s.fwd_sites = 2;
            s.plain_loads = 19;
        }),
        w("gcc", I, |s| {
            s.fwd_sites = 2;
            s.plain_loads = 19;
            s.far_sites = 1;
            s.random_branches = 2;
        }),
        w("gzip", I, |s| {
            s.fwd_sites = 3;
            s.narrow_sites = 1;
            s.plain_loads = 16;
        }),
        w("mcf", I, |s| {
            s.nmr_lag = 6;
            s.nmr_sites = 1;
            s.plain_loads = 24;
            s.chase_loads = 2;
            s.chase_nodes = 2048;
            s.random_branches = 1;
        }),
        w("parser", I, |s| {
            s.fwd_sites = 2;
            s.nmr_lag = 3;
            s.nmr_sites = 1;
            s.alias_sites = 1;
            s.plain_loads = 24;
        }),
        w("perl.d", I, |s| {
            s.fwd_sites = 2;
            s.plain_loads = 16;
            s.random_branches = 1;
        }),
        w("perl.s", I, |s| {
            s.fwd_sites = 2;
            s.plain_loads = 14;
        }),
        w("twolf", I, |s| {
            s.fwd_sites = 1;
            s.nmr_lag = 4;
            s.nmr_sites = 1;
            s.plain_loads = 18;
            s.random_branches = 1;
        }),
        w("vortex", I, |s| {
            s.fwd_sites = 4;
            s.alias_sites = 2;
            s.plain_loads = 18;
            s.replicate = 16;
        }),
        w("vpr.p", I, |s| {
            s.fwd_sites = 1;
            s.nmr_lag = 6;
            s.nmr_sites = 1;
            s.plain_loads = 21;
            s.random_branches = 1;
        }),
        w("vpr.r", I, |s| {
            s.fwd_sites = 3;
            s.narrow_sites = 1;
            s.plain_loads = 17;
            s.far_sites = 1;
            s.replicate = 4;
        }),
    ]
}

/// The 13 SPECfp workloads.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn specfp() -> Vec<WorkloadSpec> {
    use Suite::Fp as F;
    vec![
        w("ammp", F, |s| {
            s.fwd_sites = 1;
            s.nmr_lag = 3;
            s.nmr_sites = 2;
            s.plain_loads = 19;
            s.fp_chain = 4;
        }),
        w("applu", F, |s| {
            s.fwd_sites = 2;
            s.nmr_lag = 6;
            s.nmr_sites = 1;
            s.plain_loads = 20;
            s.fp_chain = 4;
        }),
        w("apsi", F, |s| {
            s.fwd_sites = 1;
            s.nmr_lag = 8;
            s.nmr_sites = 1;
            s.plain_loads = 25;
            s.chase_loads = 2;
            s.chase_nodes = 1024;
            s.fp_chain = 4;
            s.replicate = 4;
        }),
        w("art", F, |s| {
            s.fwd_sites = 1;
            s.plain_loads = 30;
            s.chase_loads = 2;
            s.chase_nodes = 2048;
            s.chase_stride = 512;
            s.fp_chain = 3;
        }),
        w("equake", F, |s| {
            s.nmr_lag = 8;
            s.nmr_sites = 1;
            s.plain_loads = 23;
            s.fp_chain = 4;
            s.replicate = 8;
        }),
        w("facerec", F, |s| {
            s.fwd_sites = 1;
            s.plain_loads = 40;
            s.chase_loads = 2;
            s.chase_nodes = 512;
            s.fp_chain = 3;
        }),
        w("galgel", F, |s| {
            s.nmr_lag = 8;
            s.nmr_sites = 1;
            s.plain_loads = 45;
            s.fp_chain = 4;
        }),
        w("lucas", F, |s| {
            s.plain_loads = 20;
            s.fp_chain = 6;
        }),
        w("mesa", F, |s| {
            s.fwd_sites = 4;
            s.alias_sites = 1;
            s.nmr_lag = 3;
            s.nmr_sites = 1;
            s.plain_loads = 18;
            s.fp_chain = 3;
        }),
        w("mgrid", F, |s| {
            s.nmr_lag = 6;
            s.nmr_sites = 1;
            s.plain_loads = 17;
            s.fp_chain = 4;
        }),
        w("sixtrack", F, |s| {
            s.fwd_sites = 4;
            s.nmr_sites = 3;
            s.alias_sites = 1;
            s.plain_loads = 16;
            s.fp_chain = 3;
        }),
        w("swim", F, |s| {
            s.fwd_sites = 1;
            s.plain_loads = 30;
            s.fp_chain = 4;
        }),
        w("wupwise", F, |s| {
            s.fwd_sites = 2;
            s.nmr_lag = 4;
            s.nmr_sites = 2;
            s.plain_loads = 18;
            s.fp_chain = 4;
            s.replicate = 16;
        }),
    ]
}

/// All 47 workloads in Table 3 order.
#[must_use]
pub fn all_workloads() -> Vec<WorkloadSpec> {
    let mut v = mediabench();
    v.extend(specint());
    v.extend(specfp());
    v
}

/// Looks a workload up by its Table 3 name.
#[must_use]
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all_workloads().into_iter().find(|w| w.name == name)
}

/// The nine benchmarks the paper uses for Figure 5's sensitivity sweeps.
pub const FIGURE5_WORKLOADS: [&str; 9] = [
    "jpeg.d", "mesa.t", "mpeg2.d", "eon.c", "vortex", "vpr.r", "apsi", "equake", "wupwise",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_47_workloads() {
        assert_eq!(mediabench().len(), 18);
        assert_eq!(specint().len(), 16);
        assert_eq!(specfp().len(), 13);
        assert_eq!(all_workloads().len(), 47);
    }

    #[test]
    fn names_are_unique_and_findable() {
        let all = all_workloads();
        let names: std::collections::HashSet<_> = all.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names.len(), 47);
        for f5 in FIGURE5_WORKLOADS {
            assert!(by_name(f5).is_some(), "figure 5 workload {f5} must exist");
        }
        assert!(by_name("no-such-benchmark").is_none());
    }

    #[test]
    fn every_workload_traces() {
        for spec in all_workloads() {
            let trace = spec
                .trace()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(
                trace.len() > 50_000,
                "{} too short: {} insts",
                spec.name,
                trace.len()
            );
            assert!(
                trace.len() < 500_000,
                "{} too long: {} insts",
                spec.name,
                trace.len()
            );
        }
    }

    #[test]
    fn forwarding_rates_span_the_papers_range() {
        // mesa.m is the paper's most forwarding-heavy program, adpcm the
        // least; verify the synthetic mixes preserve that ordering.
        let hi = by_name("mesa.m").unwrap().trace().unwrap();
        let lo = by_name("adpcm.d").unwrap().trace().unwrap();
        let mid = by_name("bzip2").unwrap().trace().unwrap();
        let r_hi = hi.oracle_forwarding_rate(64);
        let r_lo = lo.oracle_forwarding_rate(64);
        let r_mid = mid.oracle_forwarding_rate(64);
        assert!(r_hi > 0.30, "mesa.m forwards heavily, got {r_hi:.3}");
        assert!(r_lo < 0.02, "adpcm barely forwards, got {r_lo:.3}");
        assert!(
            r_mid > 0.05 && r_mid < 0.25,
            "bzip2 in between, got {r_mid:.3}"
        );
    }

    #[test]
    fn measured_rates_track_targets() {
        for name in ["epic.d", "gzip", "vortex", "wupwise", "mpeg2.d"] {
            let spec = by_name(name).unwrap();
            let trace = spec.trace().unwrap();
            let measured = trace.oracle_forwarding_rate(64);
            let target = spec.target_forwarding_rate();
            assert!(
                (measured - target).abs() < 0.08,
                "{name}: measured {measured:.3} vs target {target:.3}"
            );
        }
    }
}
