//! Synthetic workload models standing in for the paper's SPEC2000 and
//! MediaBench traces.
//!
//! We do not have the Alpha binaries or inputs the paper simulated, so each
//! of the 47 programs in the paper's Table 3 is modelled by a synthetic
//! program composed from kernels that exercise the memory-dependence
//! behaviours the forwarding predictors actually see:
//!
//! * **forwarding pairs** — store then load of the same location within an
//!   iteration (register spills, struct fields): the bread-and-butter
//!   forwarding the FSP learns;
//! * **narrow/partial pairs** — mixed-size accesses, including loads wider
//!   than the covering store (which a single SQ entry cannot satisfy);
//! * **alias sites** — one load fed by four static stores selected by
//!   control flow, which thrashes a 2-way FSP set (the paper's eon/vortex
//!   pathology);
//! * **not-most-recent recurrences** — `X[i] = a·X[i−2]`, the pattern SQ
//!   index prediction fundamentally cannot forward and the delay predictor
//!   exists for;
//! * **far pairs** — store→load distances beyond the SQ, exercising
//!   distance-based unlearning;
//! * **pointer chases, plain streams, random/patterned branches and FP
//!   chains** — cache, TLB, branch and latency behaviour.
//!
//! Per-benchmark kernel mixes are chosen so each program's forwarding rate
//! and pathology profile lands in the regime Table 3 reports for it (see
//! DESIGN.md §3 for the substitution argument).
//!
//! The workload axis is *open*: beyond the fixed roster, the
//! [`WorkloadRegistry`] maps names to streaming trace-source factories
//! (mirroring `sqip-core`'s design registry), the [`generator`] module
//! provides parameterized, scalable workload families (seeded random
//! kernel mixes, pointer chases, stride streams), and
//! [`WorkloadSpec::source`] streams any spec through the simulator
//! without materializing its trace — so run length is bounded by patience,
//! not memory.
//!
//! # Example
//!
//! ```
//! use sqip_workloads::{all_workloads, by_name, WorkloadRegistry};
//!
//! assert_eq!(all_workloads().len(), 47);
//! let w = by_name("vortex").expect("a Table 3 row");
//! let trace = w.trace().expect("workloads always halt");
//! assert!(trace.dynamic_loads() > 0);
//!
//! // The same workload, resolved by name and streamed instead:
//! let streamed = WorkloadRegistry::global().resolve("vortex")?;
//! let mut source = streamed.open()?;
//! assert!(sqip_isa::TraceSource::next_record(&mut source)?.is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod generator;
mod registry;
mod spec;
mod suite;

pub use registry::{
    intern_name, RegisteredWorkload, SourceFactory, WorkloadRegistry, WorkloadRegistryError,
};
pub use spec::{Suite, WorkloadSpec};
pub use suite::{all_workloads, by_name, mediabench, specfp, specint, FIGURE5_WORKLOADS};
