//! Workload specifications: the knobs that shape a synthetic benchmark.

use sqip_isa::{trace_program, IsaError, Program, ProgramSource, Trace};

use crate::builder::build_program;

use serde::{Deserialize, Serialize};

/// Which benchmark suite a workload models (Table 3's grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// MediaBench.
    Media,
    /// SPECint 2000.
    Int,
    /// SPECfp 2000.
    Fp,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Suite::Media => "Media",
            Suite::Int => "Int",
            Suite::Fp => "FP",
        })
    }
}

/// A synthetic benchmark description.
///
/// The counts are *per iteration of the outer loop*; every site is a
/// distinct static code sequence (distinct PCs), so site counts double as
/// the program's static memory-dependence footprint.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Benchmark name: a Table 3 row (e.g. `"mesa.t"`) or any
    /// runtime-constructed name — owned, so generated and user-defined
    /// workloads register in the
    /// [`WorkloadRegistry`](crate::WorkloadRegistry) exactly like the
    /// builtins.
    pub name: String,
    /// Suite grouping.
    pub suite: Suite,
    /// Outer-loop iterations.
    pub iterations: u32,
    /// Quad-width store→load forwarding pairs.
    pub fwd_sites: u32,
    /// Mixed-width forwarding pairs (word store, byte/half load).
    pub narrow_sites: u32,
    /// Partial-overlap pairs (word store, quad load): unforwardable from a
    /// single SQ entry.
    pub partial_sites: u32,
    /// Loads fed by 4 static stores selected by control flow (FSP-set
    /// thrash).
    pub alias_sites: u32,
    /// Not-most-recent recurrences `X[i] = a·X[i−lag]`.
    pub nmr_sites: u32,
    /// Recurrence lag in ring slots (≥2; 2 is the paper's `X[i]=A*X[i-2]`
    /// pathology, longer lags flush less often because the producer store
    /// is usually committed by the time the load executes).
    pub nmr_lag: u32,
    /// Store→load pairs at a distance beyond the SQ (ring with a 66-
    /// iteration lag).
    pub far_sites: u32,
    /// Loads from a read-only streamed region (no forwarding).
    pub plain_loads: u32,
    /// Stores to a write-only region (no forwarding).
    pub plain_stores: u32,
    /// Pointer-chase dereferences per iteration.
    pub chase_loads: u32,
    /// Pointer-ring node count (ring bytes = nodes × stride).
    pub chase_nodes: u32,
    /// Pointer-ring node stride in bytes (4096 defeats the TLB/L1).
    pub chase_stride: u32,
    /// Data-dependent branches driven by an in-register LCG (hard to
    /// predict).
    pub random_branches: u32,
    /// Branches with a short periodic pattern (learnable).
    pub pattern_branches: u32,
    /// Serial FP multiply chain length per iteration.
    pub fp_chain: u32,
    /// Independent integer ALU filler ops.
    pub int_filler: u32,
    /// Static replication factor: the loop body is emitted this many times
    /// with distinct PCs (and distinct fixed slots), multiplying the
    /// program's *static* load-store dependence footprint without changing
    /// its dynamic behaviour. Models large-code programs for the FSP/DDP
    /// capacity sensitivity study (Figure 5).
    pub replicate: u32,
    /// Generator seed (address/layout shuffling).
    pub seed: u64,
}

impl WorkloadSpec {
    /// A small neutral baseline spec; named workloads override fields.
    #[must_use]
    pub fn base(name: impl Into<String>, suite: Suite) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            suite,
            iterations: 3000,
            fwd_sites: 0,
            narrow_sites: 0,
            partial_sites: 0,
            alias_sites: 0,
            nmr_sites: 0,
            nmr_lag: 2,
            far_sites: 0,
            plain_loads: 6,
            plain_stores: 2,
            chase_loads: 0,
            chase_nodes: 256,
            chase_stride: 4096,
            random_branches: 0,
            pattern_branches: 1,
            fp_chain: 0,
            int_filler: 6,
            replicate: 1,
            seed: 0x5eed,
        }
    }

    /// The same workload with a different outer-iteration count — the
    /// standard way to shrink a model for quick sweeps and tests without
    /// changing its kernel mix.
    #[must_use]
    pub fn with_iterations(mut self, iterations: u32) -> WorkloadSpec {
        self.iterations = iterations;
        self
    }

    /// The same workload under a different name (for registering scaled
    /// or tweaked variants alongside the original).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> WorkloadSpec {
        self.name = name.into();
        self
    }

    /// Sizes the iteration count so the workload's dynamic length lands
    /// near `target_insts` (same per-iteration estimator the Table 3
    /// roster is normalised with, without its 20K-iteration clamp — this
    /// is how multi-million-instruction streaming runs are dialled up).
    #[must_use]
    pub fn sized_for_insts(mut self, target_insts: u64) -> WorkloadSpec {
        let est = u64::from(self.estimated_insts_per_iter());
        self.iterations = (target_insts / est.max(1)).clamp(1, u64::from(u32::MAX)) as u32;
        self
    }

    /// Estimated dynamic instructions per outer iteration, from the
    /// kernel mix.
    #[must_use]
    pub fn estimated_insts_per_iter(&self) -> u32 {
        3 * self.fwd_sites
            + 3 * self.narrow_sites
            + 3 * self.partial_sites
            + 10 * self.alias_sites
            + 8 * self.nmr_sites
            + 7 * self.far_sites
            + 2 * self.plain_loads
            + self.plain_stores
            + self.chase_loads
            + 5 * self.random_branches
            + 3 * self.pattern_branches
            + self.fp_chain
            + self.int_filler
            + 2 * self.replicate.max(1) // phase-selection chain
            + 7 // loop control + stream-pointer upkeep
    }

    /// Dynamic loads per outer iteration (exactly one phase body runs per
    /// iteration, so replication does not change dynamic counts).
    #[must_use]
    pub fn loads_per_iter(&self) -> u32 {
        self.fwd_sites
            + self.narrow_sites
            + self.partial_sites
            + self.alias_sites
            + self.nmr_sites
            + self.far_sites
            + self.plain_loads
            + self.chase_loads
    }

    /// Dynamic stores per outer iteration.
    #[must_use]
    pub fn stores_per_iter(&self) -> u32 {
        self.fwd_sites
            + self.narrow_sites
            + self.partial_sites
            + self.alias_sites
            + self.nmr_sites
            + self.far_sites
            + self.plain_stores
    }

    /// The forwarding-relevant fraction of loads this mix aims at
    /// (forwarding pairs + aliases + narrow + recurrences over all loads).
    #[must_use]
    pub fn target_forwarding_rate(&self) -> f64 {
        let fwd = self.fwd_sites + self.narrow_sites + self.alias_sites + self.nmr_sites;
        let all = self.loads_per_iter();
        if all == 0 {
            0.0
        } else {
            f64::from(fwd) / f64::from(all)
        }
    }

    /// Builds the program.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (a bug in the generator, not the spec).
    pub fn build(&self) -> Result<Program, IsaError> {
        build_program(self)
    }

    /// Builds and functionally executes the program into a golden trace.
    ///
    /// For long runs prefer [`WorkloadSpec::source`], which streams the
    /// same records without materializing them.
    ///
    /// # Errors
    ///
    /// Propagates assembler/executor errors.
    pub fn trace(&self) -> Result<Trace, IsaError> {
        let program = self.build()?;
        trace_program(&program, self.budget())
    }

    /// Builds the program and wraps it in a streaming interpreter: a
    /// [`sqip_isa::TraceSource`] yielding exactly the records
    /// [`WorkloadSpec::trace`] would materialize, in O(1) memory.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (a bug in the generator, not the
    /// spec).
    pub fn source(&self) -> Result<ProgramSource, IsaError> {
        let program = self.build()?;
        Ok(ProgramSource::new(program, self.budget()))
    }

    /// The dynamic-instruction budget used to bound execution — generous:
    /// iterations × (a bound on per-iteration length) plus
    /// initialisation.
    #[must_use]
    pub fn budget(&self) -> u64 {
        let per_iter = 16 * (self.loads_per_iter() + self.stores_per_iter()) as u64 + 64;
        u64::from(self.iterations) * per_iter + 16 * u64::from(self.chase_nodes) + 4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_spec_builds_and_runs() {
        let w = WorkloadSpec::base("test", Suite::Int);
        let t = w.trace().unwrap();
        assert!(t.len() > 1000);
        assert_eq!(
            t.dynamic_loads(),
            u64::from(w.loads_per_iter() * w.iterations),
            "load accounting matches the generator"
        );
    }

    #[test]
    fn target_rate_is_a_ratio() {
        let mut w = WorkloadSpec::base("t", Suite::Fp);
        w.fwd_sites = 5;
        w.plain_loads = 5;
        w.random_branches = 0;
        assert!((w.target_forwarding_rate() - 0.5).abs() < 1e-12);
    }
}
