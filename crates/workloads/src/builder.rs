//! The program generator: lowers a [`WorkloadSpec`] into micro-ISA code.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sqip_isa::{IsaError, Program, ProgramBuilder, Reg};
use sqip_types::DataSize;

use crate::spec::WorkloadSpec;

// ---- persistent register allocation ----
const R_CTR: u8 = 1; // outer loop counter
const R_LCG: u8 = 2; // LCG state for random branches
const R_FP: u8 = 3; // FP chain accumulator
const R_T0: u8 = 4; // temps
const R_T1: u8 = 5;
const R_T2: u8 = 6;
const R_ACC: u8 = 7; // integer sink accumulator
const R_PLD: u8 = 8; // plain-load stream offset
const R_NMR0: u8 = 10; // 16 not-most-recent ring offsets
const R_FAR0: u8 = 26; // 16 far-pair ring offsets
const R_ITER: u8 = 46; // iteration index
const R_NMR_MASK: u8 = 47;
const R_FAR_MASK: u8 = 48;
const R_PLAIN_MASK: u8 = 49;
const R_LCG_BIT: u8 = 50;
const R_PAT_MASK: u8 = 51;
const R_FP_CONST: u8 = 52;
const R_CHASE: u8 = 53;
const R_ALIAS0: u8 = 56; // 3 alias-site ring offsets
const R_SHIFT17: u8 = 59; // shift to extract alias variant bits from the LCG
const R_REP_MASK: u8 = 60; // body phase-selection mask (replicate-1)

// ---- memory map ----
const FWD_BASE: i64 = 0x0001_0000;
const ALIAS_BASE: i64 = 0x0002_0000;
const NMR_BASE: i64 = 0x0010_0000;
const NMR_SPACING: i64 = 0x4000;
const NMR_MASK: i64 = 1023; // 1KB ring, 128 quad slots (hot, stack-like)
const FAR_BASE: i64 = 0x0030_0000;
const FAR_SPACING: i64 = 0x1000;
const FAR_MASK: i64 = 1023; // 1KB ring, 128 quad slots
const FAR_LAG: i64 = 80 * 8; // 80 slots: clearly beyond a 64-entry SQ
const PLAIN_LD_BASE: i64 = 0x0040_0000;
const PLAIN_ST_BASE: i64 = 0x0060_0000;
const PLAIN_LD_MASK: i64 = 256 * 1024 - 1;
const CHASE_BASE: i64 = 0x0100_0000;

/// Maximum per-kind site counts (bounded by register allocation).
pub(crate) const MAX_NMR_SITES: u32 = 16;
pub(crate) const MAX_FAR_SITES: u32 = 16;
pub(crate) const MAX_ALIAS_SITES: u32 = 3;

/// Lowers `spec` into a program.
///
/// # Panics
///
/// Panics if the spec exceeds the generator's per-kind site limits.
pub(crate) fn build_program(spec: &WorkloadSpec) -> Result<Program, IsaError> {
    assert!(spec.nmr_sites <= MAX_NMR_SITES, "too many nmr sites");
    assert!(spec.far_sites <= MAX_FAR_SITES, "too many far sites");
    assert!(spec.alias_sites <= MAX_ALIAS_SITES, "too many alias sites");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut b = ProgramBuilder::new();
    let r = Reg::new;

    // ---- initialisation ----
    b.load_imm(r(R_CTR), i64::from(spec.iterations));
    b.load_imm(r(R_LCG), (spec.seed as i64) | 1);
    b.load_imm(r(R_FP), 0x3ff1_2345);
    b.load_imm(r(R_FP_CONST), 3);
    b.load_imm(r(R_ITER), 0);
    b.load_imm(r(R_ACC), 0);
    b.load_imm(r(R_PLD), 0);
    b.load_imm(r(R_NMR_MASK), NMR_MASK);
    b.load_imm(r(R_FAR_MASK), FAR_MASK);
    b.load_imm(r(R_PLAIN_MASK), PLAIN_LD_MASK);
    b.load_imm(r(R_LCG_BIT), 1 << 17);
    b.load_imm(r(R_PAT_MASK), 3);
    if spec.alias_sites > 0 {
        b.load_imm(r(R_SHIFT17), 17);
    }
    let replicate = spec.replicate.max(1);
    assert!(
        replicate.is_power_of_two(),
        "replicate must be a power of two"
    );
    if replicate > 1 {
        b.load_imm(r(R_REP_MASK), i64::from(replicate) - 1);
    }
    for k in 0..spec.alias_sites {
        b.load_imm(r(R_ALIAS0 + k as u8), 0);
    }
    for k in 0..spec.nmr_sites {
        b.load_imm(r(R_NMR0 + k as u8), 0);
    }
    for k in 0..spec.far_sites {
        b.load_imm(r(R_FAR0 + k as u8), 0);
    }

    // Pointer-chase ring construction.
    if spec.chase_loads > 0 {
        let stride = i64::from(spec.chase_stride);
        let nodes = i64::from(spec.chase_nodes);
        b.load_imm(r(R_CHASE), CHASE_BASE);
        b.load_imm(r(R_T0), nodes - 1);
        let init = b.label("chase_init");
        b.add_imm(r(R_T1), r(R_CHASE), stride);
        b.store(DataSize::Quad, r(R_T1), r(R_CHASE), 0);
        b.add_imm(r(R_CHASE), r(R_CHASE), stride);
        b.add_imm(r(R_T0), r(R_T0), -1);
        b.branch_nz(r(R_T0), init);
        // Close the ring and reset the cursor.
        b.load_imm(r(R_T1), CHASE_BASE);
        b.store(DataSize::Quad, r(R_T1), r(R_CHASE), 0);
        b.load_imm(r(R_CHASE), CHASE_BASE);
    }

    // ---- outer loop body ----
    //
    // With `replicate` > 1, the loop contains `replicate` complete copies
    // of the body (distinct PCs, distinct fixed slots) and each iteration
    // executes exactly one, selected by `iter mod replicate`. Ring-offset
    // registers are shared across copies, so every dynamic distance is the
    // same as in the unreplicated program — only the *static* footprint
    // grows, which is what the FSP/DDP capacity study needs.
    let top = b.label("outer");

    // ---- common section: stateful ring/chase/FP kernels run every
    // iteration (their pathologies depend on instance recurrence, so they
    // must not rotate through phase copies) ----
    // Alias sites: a ring written by one of four static stores (selected
    // pseudo-randomly, defeating a 2-way FSP set) and read back one
    // iteration later. The FSP can only represent two of the four
    // producers, so the load's forwarding prediction is frequently wrong;
    // wrong predictions forward nothing (the predicted store's older
    // instance no longer matches the slot) and flush whenever the real
    // producer has not yet committed. Delay prediction converts that
    // flushing into bounded delays — the paper's eon/vortex behaviour.
    for i in 0..spec.alias_sites {
        let ra = r(R_ALIAS0 + i as u8);
        let base = ALIAS_BASE + 0x1000 * i64::from(i);
        let l1 = format!("al{i}_1");
        let l2 = format!("al{i}_2");
        let l3 = format!("al{i}_3");
        let lend = format!("al{i}_end");
        b.mul_imm(r(R_LCG), r(R_LCG), 6_364_136_223_846_793_005);
        b.add_imm(r(R_LCG), r(R_LCG), 1_442_695_040_888_963_407);
        b.shr(r(R_T0), r(R_LCG), r(R_SHIFT17));
        b.and(r(R_T0), r(R_T0), r(R_PAT_MASK)); // variant = 2 LCG bits
        b.branch_nz_to(r(R_T0), &l1);
        b.store(DataSize::Quad, r(R_ITER), ra, base); // variant 0
        b.jump_to(&lend);
        b.place(&l1);
        b.add_imm(r(R_T1), r(R_T0), -1);
        b.branch_nz_to(r(R_T1), &l2);
        b.store(DataSize::Quad, r(R_PLD), ra, base); // variant 1
        b.jump_to(&lend);
        b.place(&l2);
        b.add_imm(r(R_T1), r(R_T0), -2);
        b.branch_nz_to(r(R_T1), &l3);
        b.store(DataSize::Quad, r(R_CTR), ra, base); // variant 2
        b.jump_to(&lend);
        b.place(&l3);
        b.store(DataSize::Quad, r(R_LCG), ra, base); // variant 3
        b.place(&lend);
        // Load the slot written last iteration.
        b.add_imm(r(R_T0), ra, -8);
        b.and(r(R_T0), r(R_T0), r(R_FAR_MASK));
        b.load(DataSize::Quad, r(R_T1), r(R_T0), base);
        b.xor(r(R_ACC), r(R_ACC), r(R_T1));
        b.add_imm(ra, ra, 8);
        b.and(ra, ra, r(R_FAR_MASK));
    }

    // Not-most-recent recurrences: X[i] = 3·X[i−lag] over a hot ring.
    assert!(
        spec.nmr_lag >= 2,
        "lag 1 would be most-recent (SAT-predictable)"
    );
    for k in 0..spec.nmr_sites {
        let ro = r(R_NMR0 + k as u8);
        let base = NMR_BASE + NMR_SPACING * i64::from(k);
        b.add_imm(r(R_T0), ro, -8 * i64::from(spec.nmr_lag));
        b.and(r(R_T0), r(R_T0), r(R_NMR_MASK));
        b.load(DataSize::Quad, r(R_T1), r(R_T0), base); // X[i-2]
        b.mul_imm(r(R_T1), r(R_T1), 3);
        b.add_imm(r(R_T1), r(R_T1), 1); // keep values nonzero
        b.store(DataSize::Quad, r(R_T1), ro, base); // X[i]
        b.add_imm(ro, ro, 8);
        b.and(ro, ro, r(R_NMR_MASK));
    }

    // Far pairs: load a slot stored 66 iterations ago (beyond the SQ).
    for k in 0..spec.far_sites {
        let rf = r(R_FAR0 + k as u8);
        let base = FAR_BASE + FAR_SPACING * i64::from(k);
        b.add_imm(r(R_T0), rf, -FAR_LAG);
        b.and(r(R_T0), r(R_T0), r(R_FAR_MASK));
        b.load(DataSize::Quad, r(R_T1), r(R_T0), base);
        b.xor(r(R_ACC), r(R_ACC), r(R_T1));
        b.store(DataSize::Quad, r(R_ITER), rf, base);
        b.add_imm(rf, rf, 8);
        b.and(rf, rf, r(R_FAR_MASK));
    }

    // Pointer chase (serial cache-missing dereferences; single copy).
    for _ in 0..spec.chase_loads {
        b.load(DataSize::Quad, r(R_CHASE), r(R_CHASE), 0);
    }

    // Hard (LCG-driven) branches.
    for j in 0..spec.random_branches {
        let skip = format!("rb{j}");
        b.mul_imm(r(R_LCG), r(R_LCG), 6_364_136_223_846_793_005);
        b.add_imm(r(R_LCG), r(R_LCG), 1_442_695_040_888_963_407);
        b.and(r(R_T0), r(R_LCG), r(R_LCG_BIT));
        b.branch_nz_to(r(R_T0), &skip);
        b.add_imm(r(R_ACC), r(R_ACC), 1);
        b.place(&skip);
    }

    // Serial FP chain (latency pressure on the FP pipes; single copy).
    for _ in 0..spec.fp_chain {
        b.fmul(r(R_FP), r(R_FP), r(R_FP_CONST));
    }

    // ---- phase dispatch: one stateless body copy per iteration ----
    if replicate > 1 {
        b.and(r(R_T2), r(R_ITER), r(R_REP_MASK));
    }
    for copy in 0..replicate {
        // Distinct fixed slots per copy, in a region far above the ring/chase
        // address ranges so replicas never collide with stateful kernels.
        let cbase = if copy == 0 {
            0
        } else {
            0x0800_0000 + 0x20000 * i64::from(copy)
        };
        if replicate > 1 {
            if copy > 0 {
                b.add_imm(r(R_T2), r(R_T2), -1);
            }
            if copy + 1 < replicate {
                b.branch_nz_to(r(R_T2), &format!("phase_{}", copy + 1));
            }
        }
        // Forwarding pairs: store then load the same quad slot.
        for i in 0..spec.fwd_sites {
            let slot = cbase + FWD_BASE + 32 * i64::from(i) + 8 * (rng.gen_range(0..2) as i64);
            b.store(DataSize::Quad, r(R_ITER), Reg::ZERO, slot);
            b.load(DataSize::Quad, r(R_T0), Reg::ZERO, slot);
            b.xor(r(R_ACC), r(R_ACC), r(R_T0));
        }

        // Narrow pairs: word store, byte load inside it (forwards).
        for i in 0..spec.narrow_sites {
            let slot = cbase + FWD_BASE + 0x8000 + 32 * i64::from(i);
            let byte_off = rng.gen_range(0..4) as i64;
            b.store(DataSize::Word, r(R_ITER), Reg::ZERO, slot);
            b.load(DataSize::Byte, r(R_T0), Reg::ZERO, slot + byte_off);
            b.xor(r(R_ACC), r(R_ACC), r(R_T0));
        }

        // Partial pairs: word store, quad load over it (unforwardable from a
        // single SQ entry).
        for i in 0..spec.partial_sites {
            let slot = cbase + FWD_BASE + 0xC000 + 32 * i64::from(i);
            b.store(DataSize::Word, r(R_ITER), Reg::ZERO, slot);
            b.load(DataSize::Quad, r(R_T0), Reg::ZERO, slot);
            b.xor(r(R_ACC), r(R_ACC), r(R_T0));
        }

        // Plain streamed loads (no forwarding). Word-width, matching the
        // dominant access size in the paper's workloads (the SSBF probe count
        // per load matters for its false-positive behaviour).
        for i in 0..spec.plain_loads {
            let disp = PLAIN_LD_BASE + 8 * i64::from(i);
            b.load(DataSize::Word, r(R_T0), r(R_PLD), disp);
            b.xor(r(R_ACC), r(R_ACC), r(R_T0));
        }
        if spec.plain_loads > 0 {
            b.add_imm(r(R_PLD), r(R_PLD), 8 * i64::from(spec.plain_loads));
            b.and(r(R_PLD), r(R_PLD), r(R_PLAIN_MASK));
        }

        // Plain stores: fixed hot slots (never loaded back), modelling the
        // stack-spill traffic that dominates real store streams. Streaming
        // these over a large region would give the 2K-entry SSBF a much larger
        // recent-store footprint than real traces exhibit.
        for i in 0..spec.plain_stores {
            let disp = PLAIN_ST_BASE + 8 * i64::from(i);
            b.store(DataSize::Quad, r(R_ACC), Reg::ZERO, disp);
        }

        // Easy periodic branches (period-4 pattern, learnable).
        for j in 0..spec.pattern_branches {
            let skip = format!("pb{copy}_{j}");
            b.and(r(R_T0), r(R_ITER), r(R_PAT_MASK));
            b.branch_nz_to(r(R_T0), &skip);
            b.add_imm(r(R_ACC), r(R_ACC), 3);
            b.place(&skip);
        }

        // Independent integer filler (ILP).
        for i in 0..spec.int_filler {
            let t = [R_T1, R_T2][i as usize % 2];
            b.add_imm(r(t), r(R_ITER), i64::from(i) + 1);
        }
        if replicate > 1 {
            if copy + 1 < replicate {
                b.jump_to("loop_tail");
            }
            b.place(&format!("phase_{}", copy + 1));
        }
    } // per-phase body copies
    if replicate > 1 {
        b.place("loop_tail");
    }

    // Loop control.
    b.add_imm(r(R_ITER), r(R_ITER), 1);
    b.add_imm(r(R_CTR), r(R_CTR), -1);
    b.branch_nz(r(R_CTR), top);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Suite;

    fn spec_with(f: impl FnOnce(&mut WorkloadSpec)) -> WorkloadSpec {
        let mut w = WorkloadSpec::base("t", Suite::Int);
        w.iterations = 200;
        f(&mut w);
        w
    }

    #[test]
    fn every_kernel_kind_builds_and_halts() {
        let w = spec_with(|w| {
            w.fwd_sites = 2;
            w.narrow_sites = 1;
            w.partial_sites = 1;
            w.alias_sites = 1;
            w.nmr_sites = 2;
            w.far_sites = 1;
            w.plain_loads = 2;
            w.plain_stores = 1;
            w.chase_loads = 1;
            w.chase_nodes = 16;
            w.random_branches = 1;
            w.pattern_branches = 1;
            w.fp_chain = 2;
            w.int_filler = 2;
        });
        let trace = w.trace().expect("composite workload runs");
        assert_eq!(
            trace.dynamic_loads(),
            u64::from(w.loads_per_iter() * w.iterations)
        );
        assert_eq!(
            trace.dynamic_stores(),
            // chase-ring init stores + per-iteration stores
            u64::from(w.stores_per_iter() * w.iterations) + u64::from(w.chase_nodes),
        );
    }

    #[test]
    fn forwarding_rate_tracks_target() {
        let w = spec_with(|w| {
            w.fwd_sites = 6;
            w.plain_loads = 6;
            w.plain_stores = 2;
        });
        let trace = w.trace().unwrap();
        let measured = trace.oracle_forwarding_rate(64);
        let target = w.target_forwarding_rate();
        assert!(
            (measured - target).abs() < 0.1,
            "measured {measured:.3} vs target {target:.3}"
        );
    }

    #[test]
    fn far_pairs_are_beyond_the_sq() {
        let w = spec_with(|w| {
            w.far_sites = 1;
            w.plain_loads = 0;
            w.plain_stores = 0;
            w.pattern_branches = 0;
            w.int_filler = 0;
            w.iterations = 300;
        });
        let trace = w.trace().unwrap();
        // Loads exist but none are within a 64-store window.
        assert!(trace.dynamic_loads() > 0);
        assert_eq!(trace.oracle_forwarding_rate(64), 0.0);
        assert!(
            trace.oracle_forwarding_rate(100) > 0.5,
            "but they do forward at distance 66"
        );
    }

    #[test]
    fn nmr_recurrence_really_reads_two_back() {
        let w = spec_with(|w| {
            w.nmr_sites = 1;
            w.plain_loads = 0;
            w.plain_stores = 0;
            w.pattern_branches = 0;
            w.int_filler = 0;
            w.iterations = 50;
        });
        let trace = w.trace().unwrap();
        // After warmup, values follow v_i = 3*v_{i-2} + 1 with v seeded 0:
        // the loaded values must be nonzero eventually.
        let loaded: Vec<u64> = trace
            .records()
            .iter()
            .filter(|r| r.is_load())
            .map(|r| r.result)
            .collect();
        assert!(
            loaded.iter().skip(10).all(|&v| v > 0),
            "recurrence propagates"
        );
    }

    #[test]
    fn chase_ring_closes() {
        let w = spec_with(|w| {
            w.chase_loads = 2;
            w.chase_nodes = 8;
            w.chase_stride = 64;
            w.iterations = 100;
        });
        let trace = w.trace().unwrap();
        // 2 derefs/iter over an 8-node ring: pointer values repeat with
        // period 4 iterations and never leave the ring.
        let ring_lo = 0x0100_0000u64;
        let ring_hi = ring_lo + 8 * 64;
        let ptrs: Vec<u64> = trace
            .records()
            .iter()
            .filter(|r| r.is_load() && r.mem_addr().0 >= ring_lo && r.mem_addr().0 < ring_hi)
            .map(|r| r.result)
            .collect();
        assert!(!ptrs.is_empty());
        assert!(ptrs.iter().all(|&p| (ring_lo..ring_hi).contains(&p)));
    }

    #[test]
    fn random_branches_are_roughly_balanced() {
        let w = spec_with(|w| {
            w.random_branches = 1;
            w.pattern_branches = 0;
            w.iterations = 2000;
        });
        let trace = w.trace().unwrap();
        // Count all conditional branches: the loop-control branch is
        // nearly always taken, the LCG branch splits ~50/50, so the blend
        // must land clearly between the two.
        let (mut taken, mut total) = (0u32, 0u32);
        for r in trace.records() {
            if r.op.is_conditional() {
                total += 1;
                taken += u32::from(r.taken);
            }
        }
        let ratio = f64::from(taken) / f64::from(total);
        assert!(
            ratio > 0.55 && ratio < 0.95,
            "mixed directions, got {ratio}"
        );
    }
}
