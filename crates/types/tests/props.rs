//! Property-based tests for the fundamental value types.

use proptest::prelude::*;
use sqip_types::{Addr, DataSize, Ssn};

fn size_strategy() -> impl Strategy<Value = DataSize> {
    prop_oneof![
        Just(DataSize::Byte),
        Just(DataSize::Half),
        Just(DataSize::Word),
        Just(DataSize::Quad),
    ]
}

proptest! {
    #[test]
    fn overlap_is_symmetric(a in 0u64..10_000, sa in size_strategy(),
                            b in 0u64..10_000, sb in size_strategy()) {
        let x = Addr::new(a).span(sa);
        let y = Addr::new(b).span(sb);
        prop_assert_eq!(x.overlaps(y), y.overlaps(x));
    }

    #[test]
    fn overlap_agrees_with_byte_sets(a in 0u64..1_000, sa in size_strategy(),
                                     b in 0u64..1_000, sb in size_strategy()) {
        let x = Addr::new(a).span(sa);
        let y = Addr::new(b).span(sb);
        let xs: std::collections::HashSet<u64> = x.byte_addrs().map(|p| p.0).collect();
        let ys: std::collections::HashSet<u64> = y.byte_addrs().map(|p| p.0).collect();
        prop_assert_eq!(x.overlaps(y), !xs.is_disjoint(&ys));
        prop_assert_eq!(x.contains(y), ys.is_subset(&xs));
    }

    #[test]
    fn contains_implies_overlap_and_width(a in 0u64..1_000, sa in size_strategy(),
                                          b in 0u64..1_000, sb in size_strategy()) {
        let x = Addr::new(a).span(sa);
        let y = Addr::new(b).span(sb);
        if x.contains(y) {
            prop_assert!(x.overlaps(y));
            prop_assert!(x.len() >= y.len());
        }
    }

    #[test]
    fn span_length_matches_size(a in 0u64..1_000_000, s in size_strategy()) {
        let span = Addr::new(a).span(s);
        prop_assert_eq!(span.byte_addrs().count(), s.bytes() as usize);
        prop_assert_eq!(span.len(), s.bytes());
        prop_assert_eq!(span.end() - span.base().0, u64::from(s.bytes()));
    }

    #[test]
    fn truncate_is_idempotent_and_bounded(v in any::<u64>(), s in size_strategy()) {
        let t = s.truncate(v);
        prop_assert_eq!(s.truncate(t), t);
        if s != DataSize::Quad {
            prop_assert!(t < (1u64 << (8 * s.bytes())));
        }
    }

    #[test]
    fn ssn_minus_then_distance_round_trips(raw in 1u64..1_000_000, d in 0u64..1_000) {
        let s = Ssn::new(raw);
        if raw > d {
            prop_assert_eq!(s.distance_from(s.minus(d)), d);
        }
    }

    #[test]
    fn sq_index_is_stable_under_capacity(raw in 1u64..1_000_000) {
        let s = Ssn::new(raw);
        for cap in [4usize, 16, 64, 256] {
            prop_assert!(s.sq_index(cap) < cap);
            prop_assert_eq!(s.sq_index(cap), (raw % cap as u64) as usize);
        }
    }
}
