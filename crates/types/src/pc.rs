//! Program counters.

/// A static instruction address.
///
/// Predictor tables in the paper are PC-indexed and store *partial* PCs
/// (1 byte in the paper's cost accounting); [`Pc::partial`] exposes that
/// truncation so the tables can model aliasing faithfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u64);

impl Pc {
    /// Creates a PC.
    #[must_use]
    pub fn new(raw: u64) -> Pc {
        Pc(raw)
    }

    /// The PC of the sequentially next instruction (4-byte fixed encoding,
    /// matching the Alpha ISA the paper simulates).
    #[must_use]
    pub fn next(self) -> Pc {
        Pc(self.0 + 4)
    }

    /// The instruction index for a PC within a program whose first
    /// instruction sits at address 0.
    #[must_use]
    pub fn index(self) -> usize {
        (self.0 / 4) as usize
    }

    /// Builds the PC of the instruction with the given index.
    #[must_use]
    pub fn from_index(index: usize) -> Pc {
        Pc(index as u64 * 4)
    }

    /// A table index derived from the PC for a power-of-two table.
    ///
    /// Uses the word-aligned bits (PC >> 2), as real PC-indexed predictor
    /// tables do.
    #[must_use]
    pub fn table_index(self, table_size: usize) -> usize {
        debug_assert!(table_size.is_power_of_two());
        ((self.0 >> 2) as usize) & (table_size - 1)
    }

    /// A partial tag of `bits` bits taken above the index bits of a table of
    /// `table_size` entries.
    #[must_use]
    pub fn partial_tag(self, table_size: usize, bits: u32) -> u64 {
        let shifted = (self.0 >> 2) >> table_size.trailing_zeros();
        shifted & ((1u64 << bits) - 1)
    }

    /// The low `bits` bits of the word-aligned PC — the "partial store PC"
    /// representation used by FSP entries and the SPCT.
    #[must_use]
    pub fn partial(self, bits: u32) -> u64 {
        (self.0 >> 2) & ((1u64 << bits) - 1)
    }
}

impl std::fmt::Display for Pc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pc:0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_and_index_round_trip() {
        let p = Pc::from_index(10);
        assert_eq!(p, Pc(40));
        assert_eq!(p.index(), 10);
        assert_eq!(p.next().index(), 11);
    }

    #[test]
    fn table_index_uses_word_bits() {
        // PCs 4 apart should hit adjacent table sets.
        let a = Pc::new(0x1000);
        let b = Pc::new(0x1004);
        assert_eq!(b.table_index(256), (a.table_index(256) + 1) % 256);
    }

    #[test]
    fn partial_tag_differs_for_aliasing_pcs() {
        let size = 16usize;
        let a = Pc::from_index(5);
        let b = Pc::from_index(5 + size); // same index, different tag
        assert_eq!(a.table_index(size), b.table_index(size));
        assert_ne!(a.partial_tag(size, 8), b.partial_tag(size, 8));
    }

    #[test]
    fn partial_pc_truncates() {
        let a = Pc::from_index(3);
        let b = Pc::from_index(3 + 256); // aliases in an 8-bit partial PC
        assert_eq!(a.partial(8), b.partial(8));
        assert_ne!(a.partial(16), b.partial(16));
    }
}
