//! Memory access sizes.

/// The width of a memory access, 1–8 bytes.
///
/// The paper's SQ forwards only when the load width is less than or equal to
/// the store width (and the store span covers the load span); the SSBF and
/// SPCT are built at 1-byte granularity with 8-way banking to capture mixed
/// sizes (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataSize {
    /// 1 byte.
    Byte,
    /// 2 bytes.
    Half,
    /// 4 bytes.
    Word,
    /// 8 bytes.
    Quad,
}

impl DataSize {
    /// All sizes, smallest first.
    pub const ALL: [DataSize; 4] = [
        DataSize::Byte,
        DataSize::Half,
        DataSize::Word,
        DataSize::Quad,
    ];

    /// Number of bytes the access touches.
    #[must_use]
    pub fn bytes(self) -> u8 {
        match self {
            DataSize::Byte => 1,
            DataSize::Half => 2,
            DataSize::Word => 4,
            DataSize::Quad => 8,
        }
    }

    /// Builds a size from a byte count.
    ///
    /// Returns `None` for widths the ISA does not support.
    #[must_use]
    pub fn from_bytes(bytes: u8) -> Option<DataSize> {
        match bytes {
            1 => Some(DataSize::Byte),
            2 => Some(DataSize::Half),
            4 => Some(DataSize::Word),
            8 => Some(DataSize::Quad),
            _ => None,
        }
    }

    /// Mask selecting the low `bytes()*8` bits of a 64-bit value.
    #[must_use]
    pub fn mask(self) -> u64 {
        match self {
            DataSize::Quad => u64::MAX,
            _ => (1u64 << (u64::from(self.bytes()) * 8)) - 1,
        }
    }

    /// Truncates `value` to this width.
    #[must_use]
    pub fn truncate(self, value: u64) -> u64 {
        value & self.mask()
    }
}

#[allow(clippy::derivable_impls)] // Quad is a semantic default, kept explicit
impl Default for DataSize {
    fn default() -> Self {
        DataSize::Quad
    }
}

impl std::fmt::Display for DataSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_counts() {
        assert_eq!(
            DataSize::ALL.map(DataSize::bytes),
            [1, 2, 4, 8],
            "sizes are the powers of two up to 8"
        );
    }

    #[test]
    fn from_bytes_round_trips() {
        for s in DataSize::ALL {
            assert_eq!(DataSize::from_bytes(s.bytes()), Some(s));
        }
        assert_eq!(DataSize::from_bytes(3), None);
        assert_eq!(DataSize::from_bytes(0), None);
        assert_eq!(DataSize::from_bytes(16), None);
    }

    #[test]
    fn masks_and_truncation() {
        assert_eq!(DataSize::Byte.truncate(0x1234), 0x34);
        assert_eq!(DataSize::Half.truncate(0x1_2345), 0x2345);
        assert_eq!(DataSize::Word.truncate(u64::MAX), 0xFFFF_FFFF);
        assert_eq!(DataSize::Quad.truncate(u64::MAX), u64::MAX);
    }

    #[test]
    fn ordering_matches_width() {
        assert!(DataSize::Byte < DataSize::Quad);
        assert!(DataSize::Half < DataSize::Word);
    }
}
