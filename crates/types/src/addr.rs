//! Data addresses and byte spans.

use crate::size::DataSize;

/// A byte-granularity data (virtual/physical) address.
///
/// The simulator keeps a flat address space, so a single newtype serves for
/// both virtual and physical addresses; the paper's SQs hold physical
/// addresses to avoid aliasing, and our TLB model charges translation
/// latency without remapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Creates an address.
    #[must_use]
    pub fn new(raw: u64) -> Addr {
        Addr(raw)
    }

    /// The address `bytes` bytes above this one.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }

    /// The page offset (low 12 bits for the paper's 4KB pages); this is the
    /// untranslated portion used to access the SQ CAM in modern designs.
    #[must_use]
    pub fn page_offset(self) -> u64 {
        self.0 & 0xFFF
    }

    /// The page number (address with the 4KB page offset stripped).
    #[must_use]
    pub fn page_number(self) -> u64 {
        self.0 >> 12
    }

    /// The cache-line address for a given line size (power of two).
    #[must_use]
    pub fn line(self, line_bytes: u64) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        // A shift, not a division: `line_bytes` is a runtime value (cache
        // geometry), so the compiler cannot strength-reduce this itself,
        // and it sits on the per-memory-access simulation path.
        self.0 >> line_bytes.trailing_zeros()
    }

    /// The byte span `[self, self+size)` occupied by an access of `size`.
    #[must_use]
    pub fn span(self, size: DataSize) -> AddrSpan {
        AddrSpan {
            base: self,
            bytes: size.bytes(),
        }
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl std::fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A contiguous byte range touched by a memory access.
///
/// Spans make the byte-granularity overlap/containment logic used by the
/// associative SQ (and the byte-banked SSBF/SPCT) explicit and testable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrSpan {
    base: Addr,
    bytes: u8,
}

impl AddrSpan {
    /// The first byte address of the span.
    #[must_use]
    pub fn base(self) -> Addr {
        self.base
    }

    /// Number of bytes covered.
    #[must_use]
    pub fn len(self) -> u8 {
        self.bytes
    }

    /// Spans always cover at least one byte.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// One past the last byte address.
    #[must_use]
    pub fn end(self) -> u64 {
        self.base.0 + u64::from(self.bytes)
    }

    /// Whether the two spans share at least one byte.
    #[must_use]
    pub fn overlaps(self, other: AddrSpan) -> bool {
        self.base.0 < other.end() && other.base.0 < self.end()
    }

    /// Whether `self` covers every byte of `inner`.
    ///
    /// A store span must *contain* a load span for the SQ to forward the
    /// value; mere overlap (a partial hit) cannot be satisfied from a single
    /// SQ entry and stalls the load in associative designs.
    #[must_use]
    pub fn contains(self, inner: AddrSpan) -> bool {
        self.base.0 <= inner.base.0 && inner.end() <= self.end()
    }

    /// Iterates over each byte address in the span.
    pub fn byte_addrs(self) -> impl Iterator<Item = Addr> {
        let base = self.base.0;
        (0..u64::from(self.bytes)).map(move |i| Addr(base + i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_fields() {
        let a = Addr::new(0x1234_5678);
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.page_number(), 0x12345);
    }

    #[test]
    fn line_extraction() {
        assert_eq!(Addr::new(0x100).line(64), 4);
        assert_eq!(Addr::new(0x13f).line(64), 4);
        assert_eq!(Addr::new(0x140).line(64), 5);
    }

    #[test]
    fn overlap_is_symmetric_and_exact() {
        let w = Addr::new(0x100).span(DataSize::Quad); // [0x100,0x108)
        let b_in = Addr::new(0x107).span(DataSize::Byte);
        let b_out = Addr::new(0x108).span(DataSize::Byte);
        assert!(w.overlaps(b_in) && b_in.overlaps(w));
        assert!(!w.overlaps(b_out) && !b_out.overlaps(w));
    }

    #[test]
    fn containment_requires_full_coverage() {
        let store = Addr::new(0x100).span(DataSize::Quad); // [0x100,0x108)
        let ld_half = Addr::new(0x104).span(DataSize::Half);
        let ld_straddle = Addr::new(0x106).span(DataSize::Word); // [0x106,0x10a)
        assert!(store.contains(ld_half));
        assert!(!store.contains(ld_straddle));
        assert!(store.overlaps(ld_straddle), "partial hit still overlaps");
    }

    #[test]
    fn byte_addrs_enumerates_span() {
        let s = Addr::new(10).span(DataSize::Word);
        let bytes: Vec<u64> = s.byte_addrs().map(|a| a.0).collect();
        assert_eq!(bytes, vec![10, 11, 12, 13]);
    }

    #[test]
    fn span_never_empty() {
        assert!(!Addr::new(0).span(DataSize::Byte).is_empty());
        assert_eq!(Addr::new(0).span(DataSize::Byte).len(), 1);
    }
}
