//! Fundamental value types shared by every crate in the SQIP reproduction.
//!
//! The types here are deliberately small, `Copy` newtypes ([`Pc`], [`Addr`],
//! [`Ssn`], [`DataSize`], ...) that make interfaces self-describing and make
//! it impossible to, say, index a store queue with a program counter.
//!
//! # Example
//!
//! ```
//! use sqip_types::{Addr, DataSize, Ssn};
//!
//! let ssn = Ssn::new(34);
//! assert_eq!(ssn.sq_index(4), 2); // 34 mod 4, as in the paper's Figure 3
//!
//! let a = Addr::new(0x1000);
//! assert!(a.span(DataSize::Word).overlaps(a.span(DataSize::Byte)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod pc;
mod size;
mod ssn;

pub use addr::{Addr, AddrSpan};
pub use pc::Pc;
pub use size::DataSize;
pub use ssn::Ssn;

/// A monotonically increasing identifier for a dynamic instruction.
///
/// Sequence numbers are assigned in fetch order and never recycled within a
/// simulation, which makes age comparisons between any two in-flight
/// instructions a plain integer comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Seq(pub u64);

impl Seq {
    /// First sequence number handed out by a fresh simulation.
    pub const ZERO: Seq = Seq(0);

    /// The sequence number that follows this one in fetch order.
    #[must_use]
    pub fn next(self) -> Seq {
        Seq(self.0 + 1)
    }

    /// Whether `self` is older (fetched earlier) than `other`.
    #[must_use]
    pub fn is_older_than(self, other: Seq) -> bool {
        self.0 < other.0
    }
}

impl std::fmt::Display for Seq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A simulation cycle count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Cycle zero, the instant a simulation starts.
    pub const ZERO: Cycle = Cycle(0);

    /// The cycle `n` ticks after this one.
    #[must_use]
    pub fn plus(self, n: u64) -> Cycle {
        Cycle(self.0 + n)
    }

    /// Saturating number of cycles from `earlier` to `self`.
    #[must_use]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl std::fmt::Display for Cycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cy{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_ordering_is_fetch_order() {
        let a = Seq(3);
        let b = a.next();
        assert!(a.is_older_than(b));
        assert!(!b.is_older_than(a));
        assert!(!a.is_older_than(a));
        assert_eq!(b, Seq(4));
    }

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle::ZERO.plus(10);
        assert_eq!(c, Cycle(10));
        assert_eq!(c.since(Cycle(4)), 6);
        assert_eq!(Cycle(4).since(c), 0, "since saturates");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Seq(7).to_string(), "#7");
        assert_eq!(Cycle(9).to_string(), "cy9");
    }
}
