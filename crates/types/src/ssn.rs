//! Store sequence numbers (SSNs), the store-naming scheme from the Store
//! Vulnerability Window work that the paper adopts (§3.1).

/// A Store Sequence Number: a monotonically increasing name for a dynamic
/// store, as defined by SVW and used throughout the paper.
///
/// Internally the simulator keeps SSNs as full 64-bit counters so age
/// comparison is exact; the *hardware* width (16 bits in the paper) is
/// modelled by the pipeline, which drains and clears all SSN-holding
/// structures whenever the low `N` bits wrap (§3.1).
///
/// `Ssn(0)` is reserved to mean "no store" / "no effective delay": the
/// simulator assigns real stores SSNs starting at 1, so predictor tables can
/// use the default value as an absent entry exactly the way the paper's
/// `SSNdly = 0` convention works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ssn(pub u64);

impl Ssn {
    /// The "no store" sentinel (also "no effective delay" for SSNdly).
    pub const NONE: Ssn = Ssn(0);

    /// Creates an SSN from a raw counter value.
    #[must_use]
    pub fn new(raw: u64) -> Ssn {
        Ssn(raw)
    }

    /// Whether this is the reserved "no store" sentinel.
    #[must_use]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Whether this names an actual dynamic store.
    #[must_use]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    /// The next SSN in program order.
    #[must_use]
    pub fn next(self) -> Ssn {
        Ssn(self.0 + 1)
    }

    /// The store queue slot this store occupies while in flight.
    ///
    /// The paper derives the SQ index from the low-order bits of the SSN
    /// (assuming a power-of-two SQ size); we accept any size and use modulo,
    /// which is identical for powers of two.
    ///
    /// # Panics
    ///
    /// Panics if `sq_size` is zero.
    #[must_use]
    pub fn sq_index(self, sq_size: usize) -> usize {
        assert!(sq_size > 0, "store queue size must be non-zero");
        (self.0 % sq_size as u64) as usize
    }

    /// Whether this store is still in flight given the committed-store
    /// high-water mark `ssn_cmt` (the paper's `SSN > SSNcmt` test).
    #[must_use]
    pub fn is_in_flight(self, ssn_cmt: Ssn) -> bool {
        self.is_some() && self.0 > ssn_cmt.0
    }

    /// Distance in dynamic stores from `self` back to `older` (saturating).
    #[must_use]
    pub fn distance_from(self, older: Ssn) -> u64 {
        self.0.saturating_sub(older.0)
    }

    /// The SSN `distance` dynamic stores older than this one, saturating at
    /// the [`Ssn::NONE`] sentinel (used to compute `SSNdly = SSNren − Ddly`).
    #[must_use]
    pub fn minus(self, distance: u64) -> Ssn {
        Ssn(self.0.saturating_sub(distance))
    }

    /// The value of the low `bits` bits, i.e. what a hardware SSN register
    /// of that width would hold.
    #[must_use]
    pub fn low_bits(self, bits: u32) -> u64 {
        if bits >= 64 {
            self.0
        } else {
            self.0 & ((1u64 << bits) - 1)
        }
    }
}

impl std::fmt::Display for Ssn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "ssn:none")
        } else {
            write!(f, "ssn:{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_semantics() {
        assert!(Ssn::NONE.is_none());
        assert!(!Ssn::NONE.is_some());
        assert!(Ssn::new(1).is_some());
        assert_eq!(Ssn::default(), Ssn::NONE);
    }

    #[test]
    fn sq_index_matches_paper_example() {
        // Figure 3: store with SSN 34 lives at SQ[34 mod 4] = SQ[2].
        assert_eq!(Ssn::new(34).sq_index(4), 2);
        assert_eq!(Ssn::new(18).sq_index(4), 2);
        assert_eq!(Ssn::new(64).sq_index(64), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn sq_index_rejects_zero_size() {
        let _ = Ssn::new(1).sq_index(0);
    }

    #[test]
    fn in_flight_test_is_strictly_greater() {
        let cmt = Ssn::new(17);
        assert!(Ssn::new(18).is_in_flight(cmt));
        assert!(!Ssn::new(17).is_in_flight(cmt));
        assert!(!Ssn::new(3).is_in_flight(cmt));
        assert!(!Ssn::NONE.is_in_flight(cmt), "sentinel is never in flight");
    }

    #[test]
    fn distance_and_minus_are_inverse_when_in_range() {
        let s = Ssn::new(100);
        assert_eq!(s.minus(30), Ssn::new(70));
        assert_eq!(s.distance_from(Ssn::new(70)), 30);
        assert_eq!(s.minus(1000), Ssn::NONE, "saturates to the sentinel");
        assert_eq!(Ssn::new(5).distance_from(Ssn::new(9)), 0);
    }

    #[test]
    fn low_bits_models_hardware_width() {
        let s = Ssn::new(0x1_0003);
        assert_eq!(s.low_bits(16), 3);
        assert_eq!(s.low_bits(64), 0x1_0003);
        assert_eq!(s.low_bits(70), 0x1_0003);
    }
}
