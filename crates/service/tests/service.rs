//! End-to-end tests for the `sqipd` service, run in-process against
//! ephemeral-port servers: streamed rows must reassemble into the exact
//! batch artifact, admission control must reject (not drop) overflow,
//! scheduling must be client-fair, and cancellation (explicit, timeout,
//! disconnect) must settle every job.

use std::time::{Duration, Instant};

use sqip::{ExperimentSpec, ResultSet};
use sqip_service::{Connection, JobStatus, Request, Response, Server, ServerConfig, ServerHandle};

fn spawn(cfg: ServerConfig) -> ServerHandle {
    Server::spawn("127.0.0.1:0", cfg).expect("bind an ephemeral port")
}

/// A spec sized to finish quickly: 2 workloads × 2 designs = 4 cells.
fn small_spec() -> ExperimentSpec {
    ExperimentSpec::new(
        ["mix:0xfeed:30k", "chase:128:64:20k"],
        ["ideal-oracle", "indexed-3-fwd+dly"],
    )
}

/// A one-cell spec that runs long enough to still be in flight while a
/// test stages other jobs around it.
fn long_spec(seed: u64) -> ExperimentSpec {
    ExperimentSpec::new([format!("mix:{seed:#x}:4m")], ["ideal-oracle"])
}

/// Tentpole acceptance: rows streamed over the wire, reassembled in cell
/// order, are **byte-identical** to the batch `ResultSet` artifact the
/// same experiment produces in-process — JSON and CSV both.
#[test]
fn streamed_rows_reassemble_into_the_batch_artifact() {
    let server = spawn(ServerConfig::default());
    let mut conn = Connection::connect(server.addr()).unwrap();
    let spec = small_spec();

    let outcome = conn.run_job("job-1", &spec, None).unwrap();
    assert_eq!(outcome.status, Some(JobStatus::Done), "{outcome:?}");
    assert!(outcome.is_complete(), "{outcome:?}");
    assert_eq!(outcome.cells, Some(4));

    let mut rows = outcome.rows.clone();
    rows.sort_by_key(|(index, _)| *index);
    let streamed_json = format!(
        "[{}]",
        rows.iter()
            .map(|(_, r)| r.to_json())
            .collect::<Vec<_>>()
            .join(",")
    );
    let streamed_csv: String = std::iter::once(format!("{}\n", ResultSet::csv_header()))
        .chain(rows.iter().map(|(_, r)| format!("{}\n", r.to_csv_row())))
        .collect();

    let batch = spec.to_experiment().unwrap().run().unwrap();
    assert_eq!(streamed_json, batch.to_json(), "JSON bytes diverge");
    assert_eq!(streamed_csv, batch.to_csv(), "CSV bytes diverge");

    server.shutdown();
}

/// Queue overflow is *rejected* with a reason on a live connection — the
/// connection keeps working and a later submit succeeds.
#[test]
fn queue_full_rejects_cleanly_and_connection_survives() {
    let server = spawn(ServerConfig {
        queue_capacity: 1,
        workers: 1,
        ..ServerConfig::default()
    });
    let mut conn = Connection::connect(server.addr()).unwrap();

    // j0 occupies the single worker...
    conn.send(&Request::Submit {
        id: "j0".into(),
        spec: long_spec(0xA),
        timeout_ms: None,
    })
    .unwrap();
    assert!(matches!(conn.recv().unwrap(), Response::Accepted { .. }));
    // ...wait for the worker to pop it so the queue slot frees...
    let popped = Instant::now();
    while server.stats().queue_len > 0 {
        assert!(
            popped.elapsed() < Duration::from_secs(10),
            "worker never popped j0"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // ...j1 takes the only queue slot...
    conn.send(&Request::Submit {
        id: "j1".into(),
        spec: long_spec(0xB),
        timeout_ms: None,
    })
    .unwrap();
    assert!(matches!(conn.recv().unwrap(), Response::Accepted { .. }));
    // ...and j2 must be rejected, with the capacity in the reason.
    conn.send(&Request::Submit {
        id: "j2".into(),
        spec: small_spec(),
        timeout_ms: None,
    })
    .unwrap();
    match conn.recv().unwrap() {
        Response::Rejected { id, reason } => {
            assert_eq!(id, "j2");
            assert!(reason.contains("full"), "reason: {reason}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // The connection is still healthy: ping works, and the stats counter
    // recorded the rejection.
    conn.send(&Request::Ping).unwrap();
    assert!(matches!(conn.recv().unwrap(), Response::Pong));
    assert_eq!(server.stats().rejected, 1);

    // Drain j0/j1 (rows interleave; count both terminal responses), then
    // a fresh job sails through.
    let mut done = 0;
    while done < 2 {
        if matches!(conn.recv().unwrap(), Response::Done { .. }) {
            done += 1;
        }
    }
    let outcome = conn.run_job("j3", &small_spec(), None).unwrap();
    assert!(outcome.is_complete(), "{outcome:?}");

    server.shutdown();
}

/// Per-client round-robin: while client A's flood occupies the queue, a
/// single job from client B is served before A's backlog.
#[test]
fn scheduling_is_client_fair() {
    let server = spawn(ServerConfig {
        queue_capacity: 8,
        workers: 1,
        ..ServerConfig::default()
    });
    let mut a = Connection::connect(server.addr()).unwrap();
    let mut b = Connection::connect(server.addr()).unwrap();
    // A pong proves the server accepted (and so queue-registered) B —
    // registration order, not connect order, drives the round-robin
    // cursor, and B must be known to it before A's flood is served.
    b.send(&Request::Ping).unwrap();
    assert!(matches!(b.recv().unwrap(), Response::Pong));

    // a0 occupies the single worker; wait until it is actually running.
    a.send(&Request::Submit {
        id: "a0".into(),
        spec: long_spec(0xC),
        timeout_ms: None,
    })
    .unwrap();
    assert!(matches!(a.recv().unwrap(), Response::Accepted { .. }));
    let popped = Instant::now();
    while server.stats().running == 0 {
        assert!(popped.elapsed() < Duration::from_secs(10), "a0 never ran");
        std::thread::sleep(Duration::from_millis(2));
    }

    // A floods its backlog, then B submits one job.
    for (id, seed) in [("a1", 0xD0u64), ("a2", 0xD1)] {
        a.send(&Request::Submit {
            id: id.into(),
            spec: long_spec(seed),
            timeout_ms: None,
        })
        .unwrap();
        assert!(matches!(a.recv().unwrap(), Response::Accepted { .. }));
    }
    b.send(&Request::Submit {
        id: "b0".into(),
        spec: small_spec(),
        timeout_ms: None,
    })
    .unwrap();
    assert!(matches!(b.recv().unwrap(), Response::Accepted { .. }));

    // Completion order (the server's global `seq`): a0 first, then b0 —
    // B's job does not wait behind A's whole backlog.
    let seq_of = |conn: &mut Connection| loop {
        if let Response::Done { seq, .. } = conn.recv().unwrap() {
            return seq;
        }
    };
    let b0 = seq_of(&mut b);
    let a_first = seq_of(&mut a);
    assert!(
        a_first < b0 && b0 < a_first + 2,
        "b0 (seq {b0}) should run immediately after a0 (seq {a_first})"
    );

    server.shutdown();
}

/// Per-client rate limiting: a burst beyond the bucket is rejected with
/// a reason, other clients keep their own budgets, and the bucket
/// refills at the sustained rate.
#[test]
fn rate_limit_rejects_burst_overflow_per_client() {
    let server = spawn(ServerConfig {
        rate: Some("1:2".parse().unwrap()),
        ..ServerConfig::default()
    });
    let mut conn = Connection::connect(server.addr()).unwrap();

    // Burst of 2: the first two submits are admitted back-to-back...
    for (id, seed) in [("r0", 0x20u64), ("r1", 0x21)] {
        conn.send(&Request::Submit {
            id: id.into(),
            spec: long_spec(seed),
            timeout_ms: None,
        })
        .unwrap();
        assert!(matches!(conn.recv().unwrap(), Response::Accepted { .. }));
    }
    // ...and the third is turned away, naming the budget.
    conn.send(&Request::Submit {
        id: "r2".into(),
        spec: long_spec(0x22),
        timeout_ms: None,
    })
    .unwrap();
    match conn.recv().unwrap() {
        Response::Rejected { id, reason } => {
            assert_eq!(id, "r2");
            assert!(reason.contains("rate"), "reason: {reason}");
        }
        other => panic!("expected rate rejection, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.rate_limited, 1);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.rate_clients, 1, "one bucket for the one submitter");

    // A second client draws on its own bucket — not starved by the first.
    let mut other = Connection::connect(server.addr()).unwrap();
    other
        .send(&Request::Submit {
            id: "s0".into(),
            spec: long_spec(0x23),
            timeout_ms: None,
        })
        .unwrap();
    assert!(matches!(other.recv().unwrap(), Response::Accepted { .. }));
    assert_eq!(server.stats().rate_clients, 2);

    // The bucket refills at 1 token/s: after a second the first client
    // submits again.
    std::thread::sleep(Duration::from_millis(1100));
    conn.send(&Request::Submit {
        id: "r3".into(),
        spec: long_spec(0x24),
        timeout_ms: None,
    })
    .unwrap();
    assert!(matches!(conn.recv().unwrap(), Response::Accepted { .. }));

    server.shutdown();
}

/// A per-job timeout cancels a long job promptly, reporting `timeout`.
#[test]
fn timeouts_cancel_with_reason() {
    let server = spawn(ServerConfig::default());
    let mut conn = Connection::connect(server.addr()).unwrap();
    let outcome = conn
        .run_job(
            "slow",
            &ExperimentSpec::new(["mix:0xE:400m"], ["ideal-oracle"]),
            Some(100),
        )
        .unwrap();
    match outcome.status {
        Some(JobStatus::Cancelled(reason)) => assert_eq!(reason, "timeout"),
        other => panic!("expected timeout cancellation, got {other:?}"),
    }
    server.shutdown();
}

/// An explicit cancel request settles the job as cancelled.
#[test]
fn explicit_cancel_settles_the_job() {
    let server = spawn(ServerConfig::default());
    let mut conn = Connection::connect(server.addr()).unwrap();
    conn.send(&Request::Submit {
        id: "victim".into(),
        spec: ExperimentSpec::new(["mix:0xF:400m"], ["ideal-oracle"]),
        timeout_ms: None,
    })
    .unwrap();
    assert!(matches!(conn.recv().unwrap(), Response::Accepted { .. }));
    conn.send(&Request::Cancel {
        id: "victim".into(),
    })
    .unwrap();
    loop {
        match conn.recv().unwrap() {
            Response::Cancelled { id, reason } => {
                assert_eq!(id, "victim");
                assert_eq!(reason, "cancel requested");
                break;
            }
            Response::Row { .. } => {}
            other => panic!("unexpected response {other:?}"),
        }
    }
    server.shutdown();
}

/// Dropping a connection cancels its running jobs server-side.
#[test]
fn disconnect_cancels_running_jobs() {
    let server = spawn(ServerConfig::default());
    {
        let mut conn = Connection::connect(server.addr()).unwrap();
        conn.send(&Request::Submit {
            id: "orphan".into(),
            spec: ExperimentSpec::new(["mix:0x10:400m"], ["ideal-oracle"]),
            timeout_ms: None,
        })
        .unwrap();
        assert!(matches!(conn.recv().unwrap(), Response::Accepted { .. }));
        // conn drops here.
    }
    let waited = Instant::now();
    while server.stats().cancelled == 0 {
        assert!(
            waited.elapsed() < Duration::from_secs(20),
            "orphaned job was never cancelled: {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

/// Protocol-level garbage gets an error response and the connection
/// keeps working; invalid specs report per-job errors without costing a
/// queue slot.
#[test]
fn bad_input_is_reported_without_killing_the_connection() {
    let server = spawn(ServerConfig::default());
    let conn = Connection::connect(server.addr()).unwrap();

    // Raw garbage line.
    use std::io::Write;
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"this is not json\n").unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    assert!(line.contains("\"error\""), "got: {line}");

    // Structured requests with invalid content on a protocol connection.
    let mut conn = conn;
    let unknown_workload = conn.run_job(
        "bad-wl",
        &ExperimentSpec::new(["nope"], ["ideal-oracle"]),
        None,
    );
    match unknown_workload.unwrap().status {
        Some(JobStatus::Failed(reason)) => assert!(reason.contains("nope"), "{reason}"),
        other => panic!("expected failure, got {other:?}"),
    }
    let unknown_design = conn.run_job(
        "bad-d",
        &ExperimentSpec::new(["mix:1:10k"], ["no-such-design"]),
        None,
    );
    assert!(matches!(
        unknown_design.unwrap().status,
        Some(JobStatus::Failed(_))
    ));
    conn.send(&Request::Cancel { id: "ghost".into() }).unwrap();
    assert!(matches!(conn.recv().unwrap(), Response::Error { .. }));

    // Nothing above occupied the queue, and the connection still serves
    // real work.
    assert_eq!(server.stats().accepted, 0);
    let outcome = conn.run_job("good", &small_spec(), None).unwrap();
    assert!(outcome.is_complete());

    server.shutdown();
}

/// The stats surface exposes the bounded-queue observables the soak
/// harness asserts on: capacity, high-water ≤ capacity, worker count.
#[test]
fn stats_expose_bounded_queue_observables() {
    let server = spawn(ServerConfig {
        queue_capacity: 3,
        workers: 2,
        ..ServerConfig::default()
    });
    let mut conn = Connection::connect(server.addr()).unwrap();
    let outcome = conn.run_job("one", &small_spec(), None).unwrap();
    assert!(outcome.is_complete());

    conn.send(&Request::Stats).unwrap();
    let stats = loop {
        if let Response::Stats(s) = conn.recv().unwrap() {
            break s;
        }
    };
    assert_eq!(stats.queue_capacity, 3);
    assert_eq!(stats.workers, 2);
    assert!(stats.queue_high_water <= stats.queue_capacity);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.submitted, 1);

    server.shutdown();
}

/// Shutdown via the protocol: acknowledged, queued work cancelled, and
/// subsequent submits rejected (server may also stop accepting
/// entirely — both are clean outcomes).
#[test]
fn protocol_shutdown_is_acknowledged() {
    let server = spawn(ServerConfig::default());
    let mut conn = Connection::connect(server.addr()).unwrap();
    conn.send(&Request::Shutdown).unwrap();
    assert!(matches!(conn.recv().unwrap(), Response::ShuttingDown));
    // Idempotent from the handle side too.
    server.shutdown();
}

/// **The journal recovery property.** A server killed with work queued
/// and running owes that work: rebooting on the same journal re-queues
/// every unsettled job and runs it to completion — while work that
/// settled before the kill (completed, client-cancelled) is NOT re-run.
#[test]
fn journal_recovers_jobs_killed_mid_queue() {
    let path = std::env::temp_dir().join(format!("sqipd-journal-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = ServerConfig {
        queue_capacity: 8,
        workers: 1,
        journal: Some(path.clone()),
        ..ServerConfig::default()
    };

    // Boot 1: complete one job (settles), then stage a kill: a long job
    // occupying the single worker plus two queued behind it.
    let server = spawn(cfg.clone());
    let mut conn = Connection::connect(server.addr()).unwrap();
    let done = conn.run_job("paid-off", &small_spec(), None).unwrap();
    assert_eq!(done.status, Some(JobStatus::Done));

    conn.send(&Request::Submit {
        id: "in-flight".into(),
        spec: ExperimentSpec::new(["mix:0x11:2m"], ["ideal-oracle"]),
        timeout_ms: None,
    })
    .unwrap();
    assert!(matches!(conn.recv().unwrap(), Response::Accepted { .. }));
    let popped = Instant::now();
    while server.stats().queue_len > 0 {
        assert!(
            popped.elapsed() < Duration::from_secs(10),
            "worker never popped"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    for id in ["queued-1", "queued-2"] {
        conn.send(&Request::Submit {
            id: id.into(),
            spec: small_spec(),
            timeout_ms: None,
        })
        .unwrap();
        assert!(matches!(conn.recv().unwrap(), Response::Accepted { .. }));
    }

    // "Kill" the server mid-queue: shutdown cancels without settling.
    server.shutdown();
    let drained = Instant::now();
    while server.stats().running > 0 || server.stats().queue_len > 0 {
        assert!(
            drained.elapsed() < Duration::from_secs(20),
            "shutdown never drained"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(conn);

    // The journal owes exactly the three unfinished jobs.
    let (_, pending) = sqip_service::Journal::open(&path).unwrap();
    let mut owed: Vec<&str> = pending.iter().map(|p| p.id.as_str()).collect();
    owed.sort_unstable();
    assert_eq!(owed, ["in-flight", "queued-1", "queued-2"]);

    // Boot 2 on the same journal: the debt is re-queued and completed
    // with no client attached.
    let server2 = spawn(cfg);
    let recovering = Instant::now();
    while server2.stats().completed < 3 {
        assert!(
            recovering.elapsed() < Duration::from_secs(120),
            "recovery never completed: {:?}",
            server2.stats()
        );
        assert_eq!(server2.stats().failed, 0, "recovered jobs must not fail");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Once recovered work settles, the journal owes nothing — boot 3
    // would re-run zero jobs.
    let settled = Instant::now();
    loop {
        let (_, pending) = sqip_service::Journal::open(&path).unwrap();
        if pending.is_empty() {
            break;
        }
        assert!(
            settled.elapsed() < Duration::from_secs(10),
            "journal still owes {pending:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server2.shutdown();
    let _ = std::fs::remove_file(&path);
}
