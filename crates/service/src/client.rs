//! A minimal blocking client for the `sqipd` protocol, used by the
//! loader, the integration tests, and anyone scripting a server.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use sqip::{ExperimentSpec, RunRecord};

use crate::protocol::{from_line, to_line, Request, Response};

/// One blocking protocol connection.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// How a submitted job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Ran to completion; every row arrived.
    Done,
    /// Admission control turned it away (retryable).
    Rejected(String),
    /// Cancelled (client cancel, timeout, disconnect, shutdown).
    Cancelled(String),
    /// Validation or simulation failure.
    Failed(String),
}

/// Everything a job streamed back.
#[derive(Debug, Clone, Default)]
pub struct JobOutcome {
    /// Terminal status (`Done` only if the `done` response arrived).
    pub status: Option<JobStatus>,
    /// Cell count promised by the `accepted` response.
    pub cells: Option<usize>,
    /// Streamed rows in arrival order, as `(cell index, record)`.
    pub rows: Vec<(usize, RunRecord)>,
    /// Completion sequence number from `done`.
    pub seq: u64,
    /// Server-side wall milliseconds from `done`.
    pub wall_ms: u64,
}

impl JobOutcome {
    /// Whether the job completed with exactly its promised rows, each
    /// cell index appearing exactly once.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        if self.status != Some(JobStatus::Done) {
            return false;
        }
        let Some(cells) = self.cells else {
            return false;
        };
        if self.rows.len() != cells {
            return false;
        }
        let mut seen = vec![false; cells];
        for (index, _) in &self.rows {
            if *index >= cells || seen[*index] {
                return false;
            }
            seen[*index] = true;
        }
        true
    }
}

impl Connection {
    /// Connects to a `sqipd` server.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Bounds how long [`recv`](Self::recv) blocks; `None` restores
    /// blocking reads. A timed-out read surfaces as an `io::Error` of
    /// kind `WouldBlock`/`TimedOut`.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        let line = to_line(request);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives the next response line (blocking).
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the server closed the connection;
    /// `InvalidData` for unparseable lines; other socket errors as-is.
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return from_line(&line)
                .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()));
        }
    }

    /// Submits one job and blocks until its terminal response, folding
    /// every streamed row into the returned [`JobOutcome`]. Responses
    /// for other job ids on this connection are ignored, so reserve a
    /// connection per in-flight job when using this helper.
    ///
    /// # Errors
    ///
    /// Propagates socket and framing failures.
    pub fn run_job(
        &mut self,
        id: &str,
        spec: &ExperimentSpec,
        timeout_ms: Option<u64>,
    ) -> io::Result<JobOutcome> {
        self.send(&Request::Submit {
            id: id.to_string(),
            spec: spec.clone(),
            timeout_ms,
        })?;
        let mut outcome = JobOutcome::default();
        loop {
            match self.recv()? {
                Response::Accepted { id: rid, cells } if rid == id => {
                    outcome.cells = Some(cells);
                }
                Response::Row {
                    id: rid,
                    index,
                    record,
                } if rid == id => outcome.rows.push((index, record)),
                Response::Done {
                    id: rid,
                    seq,
                    wall_ms,
                    ..
                } if rid == id => {
                    outcome.status = Some(JobStatus::Done);
                    outcome.seq = seq;
                    outcome.wall_ms = wall_ms;
                    return Ok(outcome);
                }
                Response::Rejected { id: rid, reason } if rid == id => {
                    outcome.status = Some(JobStatus::Rejected(reason));
                    return Ok(outcome);
                }
                Response::Cancelled { id: rid, reason } if rid == id => {
                    outcome.status = Some(JobStatus::Cancelled(reason));
                    return Ok(outcome);
                }
                Response::Error { id: rid, reason } if rid == id || rid.is_empty() => {
                    outcome.status = Some(JobStatus::Failed(reason));
                    return Ok(outcome);
                }
                _ => {}
            }
        }
    }
}
