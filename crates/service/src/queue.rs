//! A bounded, client-fair job queue.
//!
//! [`FairQueue`] is the server's admission boundary: it holds at most
//! `capacity` queued items **total** (the memory bound), refuses pushes
//! beyond that with [`PushError::Full`] (the admission decision), and
//! hands items to workers in **per-client round-robin** order — a client
//! that floods the queue gets its jobs interleaved with everyone else's
//! rather than starving them.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex, PoisonError};

use crate::lock_unpoisoned;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue already holds `capacity` items; admission control says
    /// come back later.
    Full {
        /// The queue's capacity.
        capacity: usize,
    },
    /// The queue was closed (server shutting down).
    Closed,
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full { capacity } => {
                write!(f, "queue full ({capacity} jobs queued); retry later")
            }
            PushError::Closed => f.write_str("server is shutting down"),
        }
    }
}

struct QState<T> {
    /// One FIFO per client, in registration order. The round-robin
    /// cursor walks this vector.
    clients: Vec<(u64, VecDeque<T>)>,
    /// Index of the next client to serve.
    rr: usize,
    /// Total queued items across all clients.
    len: usize,
    /// Peak of `len` since construction.
    high_water: usize,
    closed: bool,
}

/// A bounded multi-producer blocking queue with per-client round-robin
/// service order. See the module docs.
pub struct FairQueue<T> {
    state: Mutex<QState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> fmt::Debug for FairQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FairQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> FairQueue<T> {
    /// Creates a queue admitting at most `capacity` items in total.
    /// A zero capacity is promoted to 1 (a queue that can never admit
    /// anything is useless).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FairQueue {
            state: Mutex::new(QState {
                clients: Vec::new(),
                rr: 0,
                len: 0,
                high_water: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items queued right now.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).len
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Peak occupancy since construction — structurally bounded by
    /// [`capacity`](Self::capacity).
    #[must_use]
    pub fn high_water(&self) -> usize {
        lock_unpoisoned(&self.state).high_water
    }

    /// Registers `client` with an empty FIFO so the round-robin cursor
    /// knows about it before its first push (connection setup calls
    /// this; [`push`](Self::push) also registers lazily). Idempotent.
    pub fn register(&self, client: u64) {
        let mut st = lock_unpoisoned(&self.state);
        if !st.clients.iter().any(|(id, _)| *id == client) {
            st.clients.push((client, VecDeque::new()));
        }
    }

    /// Enqueues `item` for `client` (registering the client on first
    /// use).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the queue is at capacity,
    /// [`PushError::Closed`] after [`close`](Self::close).
    pub fn push(&self, client: u64, item: T) -> Result<(), PushError> {
        let mut st = lock_unpoisoned(&self.state);
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.len >= self.capacity {
            return Err(PushError::Full {
                capacity: self.capacity,
            });
        }
        match st.clients.iter_mut().find(|(id, _)| *id == client) {
            Some((_, fifo)) => fifo.push_back(item),
            None => {
                let mut fifo = VecDeque::new();
                fifo.push_back(item);
                st.clients.push((client, fifo));
            }
        }
        st.len += 1;
        st.high_water = st.high_water.max(st.len);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, serving clients
    /// round-robin: after serving client *i*, the next pop starts its
    /// scan at client *i*+1. Returns `None` once the queue is closed
    /// **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = lock_unpoisoned(&self.state);
        loop {
            if st.len > 0 {
                let n = st.clients.len();
                let start = if n == 0 { 0 } else { st.rr % n };
                let mut served = None;
                for off in 0..n {
                    let at = (start + off) % n;
                    if let Some(item) = st.clients[at].1.pop_front() {
                        st.rr = (at + 1) % n;
                        st.len -= 1;
                        served = Some(item);
                        break;
                    }
                }
                if served.is_some() {
                    return served;
                }
                // `len` claimed items but every FIFO was empty — the
                // bookkeeping desynchronized (e.g. a thread panicked
                // mid-update and we recovered its poisoned guard).
                // Resync and fall through to wait rather than take the
                // whole server down.
                st.len = 0;
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Removes `client` and returns its still-queued items (the caller
    /// settles them — e.g. reports them cancelled). Idle clients
    /// disappear without effect.
    pub fn remove_client(&self, client: u64) -> Vec<T> {
        let mut st = lock_unpoisoned(&self.state);
        let Some(at) = st.clients.iter().position(|(id, _)| *id == client) else {
            return Vec::new();
        };
        let (_, fifo) = st.clients.remove(at);
        if at < st.rr {
            st.rr -= 1;
        }
        if !st.clients.is_empty() {
            st.rr %= st.clients.len();
        } else {
            st.rr = 0;
        }
        st.len -= fifo.len();
        fifo.into()
    }

    /// Closes the queue: pending and future pushes fail with
    /// [`PushError::Closed`]; blocked poppers drain what is left and
    /// then receive `None`.
    pub fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaves_clients() {
        let q = FairQueue::new(16);
        // Client 1 floods; client 2 submits one job afterwards.
        q.push(1, "a1").unwrap();
        q.push(1, "a2").unwrap();
        q.push(1, "a3").unwrap();
        q.push(2, "b1").unwrap();
        // First pop serves client 1 (registration order), second serves
        // client 2 — b1 does not wait behind the flood.
        assert_eq!(q.pop(), Some("a1"));
        assert_eq!(q.pop(), Some("b1"));
        assert_eq!(q.pop(), Some("a2"));
        assert_eq!(q.pop(), Some("a3"));
    }

    #[test]
    fn capacity_is_a_hard_total_bound() {
        let q = FairQueue::new(2);
        q.push(1, 0).unwrap();
        q.push(2, 1).unwrap();
        assert_eq!(q.push(3, 2), Err(PushError::Full { capacity: 2 }));
        assert_eq!(q.high_water(), 2);
        q.pop();
        q.push(3, 2).unwrap();
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn remove_client_drops_its_backlog_and_fixes_the_cursor() {
        let q = FairQueue::new(8);
        q.push(1, "a1").unwrap();
        q.push(2, "b1").unwrap();
        q.push(2, "b2").unwrap();
        q.push(3, "c1").unwrap();
        assert_eq!(q.pop(), Some("a1")); // rr now at client 2
        assert_eq!(q.remove_client(2), vec!["b1", "b2"]);
        assert_eq!(q.pop(), Some("c1"));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = FairQueue::new(4);
        q.push(1, 7).unwrap();
        q.close();
        assert_eq!(q.push(1, 8), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        use std::sync::Arc;
        let q = Arc::new(FairQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(1, 42).unwrap();
        assert_eq!(popper.join().unwrap(), Some(42));
    }
}
