//! `sqipd` — the sweep server.
//!
//! Binds a TCP listener and serves `sqip` experiment jobs over the
//! JSON-lines protocol until a client sends a `shutdown` request (see
//! `sqip_service::protocol`).
//!
//! ```text
//! cargo run --release -p sqip-service --bin sqipd -- \
//!     --addr 127.0.0.1:4771 --queue-cap 16 --workers 2
//! ```

#![forbid(unsafe_code)]

use sqip_service::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sqipd [--addr HOST:PORT] [--queue-cap N] [--workers N] \
         [--job-threads N] [--max-cells N] [--default-timeout-ms N] \
         [--journal PATH] [--rate PER_SEC[:BURST]]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("error: {flag} requires a value");
        usage();
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: invalid value `{value}` for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:4771".to_string();
    let mut cfg = ServerConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = parse(&arg, it.next()),
            "--queue-cap" => cfg.queue_capacity = parse(&arg, it.next()),
            "--workers" => cfg.workers = parse(&arg, it.next()),
            "--job-threads" => cfg.threads_per_job = parse(&arg, it.next()),
            "--max-cells" => cfg.max_cells_per_job = parse(&arg, it.next()),
            "--default-timeout-ms" => cfg.default_timeout_ms = parse(&arg, it.next()),
            "--journal" => cfg.journal = Some(parse::<std::path::PathBuf>(&arg, it.next())),
            "--rate" => cfg.rate = Some(parse(&arg, it.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage();
            }
        }
    }

    let server = match Server::bind(&addr, cfg.clone()) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("error: cannot bind {addr}: {err}");
            std::process::exit(1);
        }
    };
    let bound = server
        .local_addr()
        .map_or_else(|_| addr.clone(), |a| a.to_string());
    println!(
        "sqipd listening on {bound} (workers={}, job-threads={}, queue-cap={}, \
         max-cells={}, default-timeout-ms={})",
        cfg.workers,
        cfg.threads_per_job,
        cfg.queue_capacity,
        cfg.max_cells_per_job,
        cfg.default_timeout_ms
    );
    server.run();
    println!("sqipd: shutdown complete");
}
