//! `sqip-loader` — the load-generation and SLO-verification harness for
//! a running `sqipd` (see `sqip_service::loader` for the phases).
//!
//! ```text
//! # CI soak: 8 clients, burst + repeatability phases, JSON artifact
//! cargo run --release -p sqip-service --bin sqip-loader -- \
//!     --addr 127.0.0.1:4771 --quick --out soak-report.json --shutdown
//! ```
//!
//! Exits 0 when every SLO passes, 1 when any fails, 2 on usage errors.

#![forbid(unsafe_code)]

use sqip_service::{run_load, LoaderConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sqip-loader [--addr HOST:PORT] [--clients N] [--jobs N] [--seed N] \
         [--max-insts N] [--p99-ms N] [--timeout-ms N] [--quick] [--burst|--no-burst] \
         [--repeat] [--shutdown] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("error: {flag} requires a value");
        usage();
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: invalid value `{value}` for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut cfg = LoaderConfig::default();
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = parse(&arg, it.next()),
            "--clients" => cfg.clients = parse(&arg, it.next()),
            "--jobs" => cfg.jobs_per_client = parse(&arg, it.next()),
            "--seed" => cfg.seed = parse(&arg, it.next()),
            "--max-insts" => cfg.max_insts = parse(&arg, it.next()),
            "--p99-ms" => cfg.p99_ms = parse(&arg, it.next()),
            "--timeout-ms" => cfg.timeout_ms = Some(parse(&arg, it.next())),
            "--quick" => {
                let addr = cfg.addr.clone();
                cfg = LoaderConfig {
                    shutdown_after: cfg.shutdown_after,
                    ..LoaderConfig::quick(addr)
                };
            }
            "--burst" => cfg.burst = true,
            "--no-burst" => cfg.burst = false,
            "--repeat" => cfg.repeat = true,
            "--shutdown" => cfg.shutdown_after = true,
            "--out" => out = Some(parse(&arg, it.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage();
            }
        }
    }

    println!(
        "sqip-loader: {} clients x {} jobs against {} (seed {:#x}, burst={}, repeat={})",
        cfg.clients, cfg.jobs_per_client, cfg.addr, cfg.seed, cfg.burst, cfg.repeat
    );
    let report = match run_load(&cfg) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: load run failed: {err}");
            std::process::exit(1);
        }
    };

    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("error: report does not serialize: {err}");
            std::process::exit(1);
        }
    };
    match &out {
        Some(path) => {
            if let Err(err) = std::fs::write(path, json.clone() + "\n") {
                eprintln!("error: writing {path}: {err}");
                std::process::exit(1);
            }
            println!("report written to {path}");
        }
        None => println!("{json}"),
    }

    println!(
        "completed {}/{} jobs, {} rows, p99 {:.0} ms, {:.0} rows/s, digest {}{}",
        report.jobs_completed,
        report.clients * report.jobs_per_client,
        report.rows_received,
        report.latency.p99_ms,
        report.rows_per_sec,
        report.digest,
        report
            .repeat_digest
            .as_ref()
            .map_or_else(String::new, |d| format!(" (repeat {d})")),
    );
    if report.slo.pass {
        println!("all SLOs passed");
    } else {
        eprintln!(
            "SLO FAILURE: p99_ok={} rows_ok={} burst_ok={} repeat_ok={} queue_bounded_ok={}",
            report.slo.p99_ok,
            report.slo.rows_ok,
            report.slo.burst_ok,
            report.slo.repeat_ok,
            report.slo.queue_bounded_ok
        );
        std::process::exit(1);
    }
}
