//! The `sqipd` wire protocol: JSON-lines framing over TCP.
//!
//! Every message is one compact JSON object on one `\n`-terminated line,
//! tagged by a `"type"` field. Requests flow client → server, responses
//! server → client; responses carrying an `"id"` echo the job id of the
//! submit they answer, so a client may pipeline many jobs on one
//! connection and demultiplex by id.
//!
//! The payload types are the `sqip` crate's own serialized forms: a
//! submit carries an [`ExperimentSpec`] (the versioned wire schema), and
//! each `row` response carries a [`RunRecord`] — byte-identical to the
//! row the batch `ResultSet` serialization would hold, so streamed rows
//! reassemble into exactly the offline artifact.

use serde::{Deserialize, Serialize, Value};
use sqip::{ExperimentSpec, RunRecord};

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one experiment as a job.
    Submit {
        /// Client-chosen job id, echoed on every response for this job.
        id: String,
        /// What to simulate.
        spec: ExperimentSpec,
        /// Per-job wall-clock budget in milliseconds; `None` uses the
        /// server's default. `0` means no timeout.
        timeout_ms: Option<u64>,
    },
    /// Cooperatively cancel a previously submitted job.
    Cancel {
        /// The job to cancel.
        id: String,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Request a [`Response::Stats`] snapshot.
    Stats,
    /// Ask the server to shut down (drains nothing: queued and running
    /// jobs are cancelled).
    Shutdown,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // one message per protocol event, far off the hot path; boxing would ripple through the wire API
pub enum Response {
    /// The job passed validation and entered the queue.
    Accepted {
        /// The job id.
        id: String,
        /// How many sweep cells (= result rows) the job will produce.
        cells: usize,
    },
    /// Admission control turned the job away (queue full, job too large,
    /// or server shutting down). The connection stays usable; resubmit
    /// later.
    Rejected {
        /// The job id.
        id: String,
        /// Why the job was not admitted.
        reason: String,
    },
    /// One finished cell's result row, streamed while the job is still
    /// running. `record` is bit-identical to the row the final batch
    /// `ResultSet` holds at `index`.
    Row {
        /// The job id.
        id: String,
        /// The cell's index in the experiment's cell order.
        index: usize,
        /// The cell's result row.
        record: RunRecord,
    },
    /// The job ran to completion; all rows have been streamed.
    Done {
        /// The job id.
        id: String,
        /// Total rows streamed (= the job's cell count).
        rows: usize,
        /// The server's global completion sequence number (monotonic
        /// across all jobs — observable scheduling order).
        seq: u64,
        /// Wall-clock milliseconds from acceptance to completion.
        wall_ms: u64,
    },
    /// The job stopped early: client cancel, timeout, disconnect, or
    /// server shutdown ( `reason` says which).
    Cancelled {
        /// The job id.
        id: String,
        /// Why the job stopped.
        reason: String,
    },
    /// The request failed (malformed line, spec that does not validate,
    /// unknown job id, or a job whose simulation failed). `id` is empty
    /// for errors not attributable to a job.
    Error {
        /// The job id (may be empty).
        id: String,
        /// The failure.
        reason: String,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// A point-in-time server statistics snapshot.
    Stats(StatsSnapshot),
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
}

/// A point-in-time view of the server's counters (the observable side of
/// the bounded-queue admission story).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Jobs submitted (valid or not).
    pub submitted: u64,
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Jobs turned away by admission control.
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs cancelled (client cancel, timeout, disconnect, shutdown).
    pub cancelled: u64,
    /// Jobs that failed in simulation or validation.
    pub failed: u64,
    /// Jobs queued right now.
    pub queue_len: u64,
    /// The queue's capacity (the admission bound).
    pub queue_capacity: u64,
    /// Peak queue occupancy since start — never exceeds
    /// `queue_capacity`; the memory-boundedness observable.
    pub queue_high_water: u64,
    /// Jobs executing right now (bounded by `workers`).
    pub running: u64,
    /// Worker threads configured — with `queue_capacity`, the sizing a
    /// load generator needs to provoke admission control.
    pub workers: u64,
    /// Submits turned away by per-client rate limiting (a subset of
    /// `rejected`). Always `0` when the server has no `--rate`.
    pub rate_limited: u64,
    /// Per-client token buckets currently tracked (one per connection
    /// that has submitted under a rate limit; dropped on disconnect).
    pub rate_clients: u64,
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

/// Checks that `value` (an object) holds no keys beyond `known` —
/// protocol messages are rejected, not silently pruned, when they carry
/// fields this build does not understand.
fn reject_unknown(value: &Value, what: &str, known: &[&str]) -> Result<(), serde::Error> {
    let Value::Object(fields) = value else {
        return Err(serde::Error::custom(format!("{what}: expected an object")));
    };
    for (key, _) in fields {
        if !known.contains(&key.as_str()) {
            return Err(serde::Error::custom(format!(
                "unknown field `{key}` in {what} (known: {})",
                known.join(", ")
            )));
        }
    }
    Ok(())
}

fn tag(value: &Value) -> Result<&str, serde::Error> {
    match value.get("type") {
        Some(Value::Str(t)) => Ok(t),
        _ => Err(serde::Error::custom("message has no string `type` field")),
    }
}

impl Serialize for Request {
    fn serialize(&self) -> Value {
        match self {
            Request::Submit {
                id,
                spec,
                timeout_ms,
            } => {
                let mut fields = vec![
                    ("type", s("submit")),
                    ("id", s(id)),
                    ("spec", spec.serialize()),
                ];
                if let Some(ms) = timeout_ms {
                    fields.push(("timeout_ms", Value::U64(*ms)));
                }
                obj(fields)
            }
            Request::Cancel { id } => obj(vec![("type", s("cancel")), ("id", s(id))]),
            Request::Ping => obj(vec![("type", s("ping"))]),
            Request::Stats => obj(vec![("type", s("stats"))]),
            Request::Shutdown => obj(vec![("type", s("shutdown"))]),
        }
    }
}

impl Deserialize for Request {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        match tag(value)? {
            "submit" => {
                reject_unknown(value, "submit", &["type", "id", "spec", "timeout_ms"])?;
                Ok(Request::Submit {
                    id: serde::field(value, "id")?,
                    spec: serde::field(value, "spec")?,
                    timeout_ms: match value.get("timeout_ms") {
                        None | Some(Value::Null) => None,
                        Some(v) => Some(u64::deserialize(v)?),
                    },
                })
            }
            "cancel" => {
                reject_unknown(value, "cancel", &["type", "id"])?;
                Ok(Request::Cancel {
                    id: serde::field(value, "id")?,
                })
            }
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(serde::Error::custom(format!(
                "unknown request type `{other}`"
            ))),
        }
    }
}

impl Serialize for Response {
    fn serialize(&self) -> Value {
        match self {
            Response::Accepted { id, cells } => obj(vec![
                ("type", s("accepted")),
                ("id", s(id)),
                ("cells", Value::U64(*cells as u64)),
            ]),
            Response::Rejected { id, reason } => obj(vec![
                ("type", s("rejected")),
                ("id", s(id)),
                ("reason", s(reason)),
            ]),
            Response::Row { id, index, record } => obj(vec![
                ("type", s("row")),
                ("id", s(id)),
                ("index", Value::U64(*index as u64)),
                ("record", record.serialize()),
            ]),
            Response::Done {
                id,
                rows,
                seq,
                wall_ms,
            } => obj(vec![
                ("type", s("done")),
                ("id", s(id)),
                ("rows", Value::U64(*rows as u64)),
                ("seq", Value::U64(*seq)),
                ("wall_ms", Value::U64(*wall_ms)),
            ]),
            Response::Cancelled { id, reason } => obj(vec![
                ("type", s("cancelled")),
                ("id", s(id)),
                ("reason", s(reason)),
            ]),
            Response::Error { id, reason } => obj(vec![
                ("type", s("error")),
                ("id", s(id)),
                ("reason", s(reason)),
            ]),
            Response::Pong => obj(vec![("type", s("pong"))]),
            Response::Stats(snapshot) => {
                let mut all = vec![("type".to_string(), s("stats"))];
                if let Value::Object(mut fields) = snapshot.serialize() {
                    all.append(&mut fields);
                }
                Value::Object(all)
            }
            Response::ShuttingDown => obj(vec![("type", s("shutting-down"))]),
        }
    }
}

impl Deserialize for Response {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        match tag(value)? {
            "accepted" => Ok(Response::Accepted {
                id: serde::field(value, "id")?,
                cells: serde::field(value, "cells")?,
            }),
            "rejected" => Ok(Response::Rejected {
                id: serde::field(value, "id")?,
                reason: serde::field(value, "reason")?,
            }),
            "row" => Ok(Response::Row {
                id: serde::field(value, "id")?,
                index: serde::field(value, "index")?,
                record: serde::field(value, "record")?,
            }),
            "done" => Ok(Response::Done {
                id: serde::field(value, "id")?,
                rows: serde::field(value, "rows")?,
                seq: serde::field(value, "seq")?,
                wall_ms: serde::field(value, "wall_ms")?,
            }),
            "cancelled" => Ok(Response::Cancelled {
                id: serde::field(value, "id")?,
                reason: serde::field(value, "reason")?,
            }),
            "error" => Ok(Response::Error {
                id: serde::field(value, "id")?,
                reason: serde::field(value, "reason")?,
            }),
            "pong" => Ok(Response::Pong),
            "stats" => Ok(Response::Stats(StatsSnapshot::deserialize(value)?)),
            "shutting-down" => Ok(Response::ShuttingDown),
            other => Err(serde::Error::custom(format!(
                "unknown response type `{other}`"
            ))),
        }
    }
}

/// Renders a message as one protocol line (no trailing newline; compact
/// JSON never contains one).
pub fn to_line<T: Serialize>(message: &T) -> String {
    serde_json::to_string(message).unwrap_or_else(|_| {
        // Only non-finite floats can fail serialization. Emit a
        // well-formed error line instead of panicking the writer
        // thread mid-connection.
        "{\"type\":\"error\",\"id\":\"\",\"reason\":\"internal: unserializable message\"}"
            .to_string()
    })
}

/// Parses one protocol line.
///
/// # Errors
///
/// Returns the parse/shape error for malformed lines.
pub fn from_line<T: Deserialize>(line: &str) -> Result<T, serde::Error> {
    serde_json::from_str(line.trim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqip::ExperimentSpec;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit {
                id: "j1".into(),
                spec: ExperimentSpec::new(["gzip"], ["ideal-oracle"]),
                timeout_ms: Some(500),
            },
            Request::Submit {
                id: "j2".into(),
                spec: ExperimentSpec::new(["mix:1:10k"], ["indexed-3-fwd+dly"]),
                timeout_ms: None,
            },
            Request::Cancel { id: "j1".into() },
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = to_line(&req);
            assert!(!line.contains('\n'));
            assert_eq!(from_line::<Request>(&line).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Accepted {
                id: "j".into(),
                cells: 4,
            },
            Response::Rejected {
                id: "j".into(),
                reason: "queue full".into(),
            },
            Response::Done {
                id: "j".into(),
                rows: 4,
                seq: 17,
                wall_ms: 250,
            },
            Response::Cancelled {
                id: "j".into(),
                reason: "timeout".into(),
            },
            Response::Error {
                id: String::new(),
                reason: "bad line".into(),
            },
            Response::Pong,
            Response::Stats(StatsSnapshot {
                submitted: 3,
                queue_capacity: 16,
                ..StatsSnapshot::default()
            }),
            Response::ShuttingDown,
        ];
        for resp in resps {
            assert_eq!(from_line::<Response>(&to_line(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn unknown_types_and_fields_error() {
        assert!(from_line::<Request>(r#"{"type":"frobnicate"}"#).is_err());
        assert!(from_line::<Request>(r#"{"id":"x"}"#).is_err());
        assert!(from_line::<Request>(r#"{"type":"cancel","id":"x","extra":1}"#).is_err());
        assert!(from_line::<Response>(r#"{"type":"nope"}"#).is_err());
        assert!(from_line::<Request>("not json").is_err());
    }
}
