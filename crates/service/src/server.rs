//! The `sqipd` server: accept loop, per-connection reader/writer
//! threads, a worker pool draining the [`FairQueue`], and a deadline
//! monitor enforcing per-job timeouts.
//!
//! # Threading model
//!
//! One thread accepts connections. Each connection gets a **reader**
//! (parses request lines, performs admission) and a **writer** (drains a
//! bounded response channel onto the socket). `workers` threads pop jobs
//! from the shared queue and run them on a [`SweepEngine`], streaming
//! each finished cell as a [`Response::Row`] through the owning
//! connection's channel. A monitor thread flips the [`CancelToken`] of
//! any job past its deadline.
//!
//! # Backpressure
//!
//! Memory is bounded at every stage: the job queue admits at most
//! `queue_capacity` jobs (pushes beyond that are *rejected*, not
//! buffered), and each connection's response channel holds at most
//! [`RESPONSE_CHANNEL_DEPTH`] messages. A worker streaming rows to a
//! client that has stopped reading blocks on that bounded channel,
//! polling its cancel token — so a stalled client wedges only its own
//! jobs until their timeout fires, never the server. With
//! [`ServerConfig::rate`] set, a per-client token bucket additionally
//! bounds how fast any one connection may *submit* — overflow gets a
//! clean rejection, never a stalled or dropped connection.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use sqip::{CancelToken, CellEvent, Experiment, SqipError, SweepEngine};

use crate::journal::{Journal, PendingJob};
use crate::lock_unpoisoned;
use crate::protocol::{from_line, to_line, Request, Response, StatsSnapshot};
use crate::queue::{FairQueue, PushError};

/// Per-connection response channel depth. Small on purpose: rows are
/// produced by workers and consumed at socket speed, and the channel is
/// the only per-connection buffering.
pub const RESPONSE_CHANNEL_DEPTH: usize = 256;

/// The cancel reason that marks shutdown — the one way a job may stop
/// *without* settling its journal entry, so a restarted server re-runs
/// it.
const SHUTDOWN_REASON: &str = "server shutdown";

/// The reserved queue-client id recovered jobs run under (real
/// connections are numbered from 1).
const RECOVERY_CLIENT: u64 = 0;

/// How the server is sized and guarded.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Jobs admitted to the queue at once (beyond the ones running).
    pub queue_capacity: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Threads each worker hands to its [`SweepEngine`] (per-job
    /// parallelism; total simulation threads ≈ `workers × threads_per_job`).
    pub threads_per_job: usize,
    /// Default per-job wall-clock budget in milliseconds when a submit
    /// names none; `0` disables the default timeout.
    pub default_timeout_ms: u64,
    /// Largest cell count a single job may expand to.
    pub max_cells_per_job: usize,
    /// Path of the persistent job journal; `None` (the default) serves
    /// from memory only. With a journal, admitted jobs that never
    /// settle — the process was killed, or shut down with work queued
    /// or running — are re-queued by the next server that opens it.
    pub journal: Option<std::path::PathBuf>,
    /// Per-client submit rate limit; `None` (the default) admits at any
    /// rate the queue can absorb. Each connection gets its own token
    /// bucket, so one chatty client exhausts only its own budget.
    pub rate: Option<RateLimit>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 16,
            workers: 2,
            threads_per_job: 1,
            default_timeout_ms: 300_000,
            max_cells_per_job: 256,
            journal: None,
            rate: None,
        }
    }
}

/// A token-bucket submit rate: a sustained `per_sec` jobs per second
/// with bursts of up to `burst` back-to-back submits.
///
/// Parses from `"<per_sec>"` or `"<per_sec>:<burst>"` (the `--rate`
/// flag's syntax); a bare rate gets `burst = per_sec`. Submits beyond
/// the budget are answered with a clean [`Response::Rejected`] — the
/// connection stays usable and the client may retry after backing off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained refill rate, tokens (= submits) per second. Never zero.
    pub per_sec: u64,
    /// Bucket capacity: how many submits may arrive back-to-back before
    /// the sustained rate applies. Never zero.
    pub burst: u64,
}

impl std::str::FromStr for RateLimit {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (rate, burst) = match s.split_once(':') {
            Some((rate, burst)) => (rate, Some(burst)),
            None => (s, None),
        };
        let per_sec: u64 = rate
            .parse()
            .map_err(|_| format!("invalid rate `{rate}` (want jobs/s)"))?;
        let burst: u64 = match burst {
            Some(b) => b
                .parse()
                .map_err(|_| format!("invalid burst `{b}` (want a job count)"))?,
            None => per_sec,
        };
        if per_sec == 0 || burst == 0 {
            return Err("rate and burst must both be at least 1".into());
        }
        Ok(RateLimit { per_sec, burst })
    }
}

/// Micro-tokens per token: integer refill math at microsecond
/// granularity, so fractional refills accumulate instead of rounding to
/// zero between closely spaced submits.
const MICRO: u64 = 1_000_000;

impl RateLimit {
    /// Takes one token from `bucket` at time `now`, refilling first.
    /// Returns whether the submit is admitted.
    fn admit(&self, bucket: &mut Bucket, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(bucket.refilled_at);
        let refill = u64::try_from(elapsed.as_micros())
            .unwrap_or(u64::MAX)
            .saturating_mul(self.per_sec);
        bucket.micro_tokens = bucket
            .micro_tokens
            .saturating_add(refill)
            .min(self.burst.saturating_mul(MICRO));
        bucket.refilled_at = now;
        if bucket.micro_tokens >= MICRO {
            bucket.micro_tokens -= MICRO;
            true
        } else {
            false
        }
    }

    /// A fresh, full bucket — a new client may burst immediately.
    fn full_bucket(&self, now: Instant) -> Bucket {
        Bucket {
            micro_tokens: self.burst.saturating_mul(MICRO),
            refilled_at: now,
        }
    }
}

/// One client's token-bucket state (see [`RateLimit`]).
struct Bucket {
    /// Remaining budget in micro-tokens ([`MICRO`] per submit).
    micro_tokens: u64,
    /// When the bucket last refilled; elapsed wall time since then is
    /// the next refill's credit.
    refilled_at: Instant,
}

/// A job sitting in the queue: the validated experiment plus everything
/// needed to stream its results back.
struct Job {
    key: JobKey,
    display_id: String,
    experiment: Experiment,
    cells: usize,
    accepted_at: Instant,
    reply: SyncSender<Response>,
    /// The job's journal admission, settled when the job finishes for
    /// any reason other than server shutdown.
    journal_seq: Option<u64>,
}

type JobKey = (u64, String);

/// Control block for a registered (queued or running) job.
struct JobCtl {
    token: CancelToken,
    deadline: Option<Instant>,
    /// Set by whoever cancels, read by the worker when reporting.
    reason: Mutex<Option<&'static str>>,
}

impl JobCtl {
    fn cancel(&self, reason: &'static str) {
        let mut slot = lock_unpoisoned(&self.reason);
        if slot.is_none() {
            *slot = Some(reason);
        }
        drop(slot);
        self.token.cancel();
    }

    fn reason(&self) -> &'static str {
        lock_unpoisoned(&self.reason).unwrap_or("cancelled")
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    running: AtomicU64,
    rate_limited: AtomicU64,
}

struct Shared {
    cfg: ServerConfig,
    journal: Option<Journal>,
    queue: FairQueue<Job>,
    jobs: Mutex<BTreeMap<JobKey, Arc<JobCtl>>>,
    shutdown: AtomicBool,
    /// Global completion sequence — stamps `Done.seq` so tests and
    /// clients can observe scheduling order.
    seq: AtomicU64,
    next_client: AtomicU64,
    counters: Counters,
    /// Per-client token buckets, present only when `cfg.rate` is set.
    /// Entries are created on a client's first submit and dropped when
    /// its connection ends.
    buckets: Mutex<BTreeMap<u64, Bucket>>,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            queue_len: self.queue.len() as u64,
            queue_capacity: self.queue.capacity() as u64,
            queue_high_water: self.queue.high_water() as u64,
            running: self.counters.running.load(Ordering::Relaxed),
            workers: self.cfg.workers as u64,
            rate_limited: self.counters.rate_limited.load(Ordering::Relaxed),
            rate_clients: lock_unpoisoned(&self.buckets).len() as u64,
        }
    }

    fn register(&self, key: JobKey, ctl: Arc<JobCtl>) {
        lock_unpoisoned(&self.jobs).insert(key, ctl);
    }

    fn unregister(&self, key: &JobKey) -> Option<Arc<JobCtl>> {
        lock_unpoisoned(&self.jobs).remove(key)
    }

    fn cancel_job(&self, key: &JobKey, reason: &'static str) -> bool {
        match lock_unpoisoned(&self.jobs).get(key) {
            Some(ctl) => {
                ctl.cancel(reason);
                true
            }
            None => false,
        }
    }

    /// Cancels every registered job belonging to `client` (used on
    /// disconnect and shutdown).
    fn cancel_client(&self, client: u64, reason: &'static str) {
        let table = lock_unpoisoned(&self.jobs);
        for (key, ctl) in table.iter() {
            if key.0 == client {
                ctl.cancel(reason);
            }
        }
    }

    fn cancel_all(&self, reason: &'static str) {
        let table = lock_unpoisoned(&self.jobs);
        for ctl in table.values() {
            ctl.cancel(reason);
        }
    }

    /// Marks a job's journal admission settled, when both exist.
    fn settle_journal(&self, seq: Option<u64>) {
        if let (Some(journal), Some(seq)) = (&self.journal, seq) {
            journal.settle(seq);
        }
    }
}

/// A bound-but-not-yet-running server. Call [`run`](Server::run) (or
/// [`spawn`](Server::spawn) for tests) to serve.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    /// Unsettled jobs replayed from the journal, re-queued when the
    /// server starts serving.
    recovered: Vec<PendingJob>,
}

/// A cloneable remote control for a running server: shutdown and
/// statistics, usable from any thread (tests drive assertions with it).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServerHandle {
    /// The address the server listens on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Initiates shutdown: closes the queue, cancels every job, and
    /// unblocks the accept loop. Idempotent.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared, Some(self.addr));
    }
}

impl Server {
    /// Binds to `addr` (`"127.0.0.1:0"` picks an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let queue = FairQueue::new(cfg.queue_capacity);
        let (journal, recovered) = match &cfg.journal {
            Some(path) => {
                let (journal, pending) = Journal::open(path)?;
                (Some(journal), pending)
            }
            None => (None, Vec::new()),
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                journal,
                queue,
                jobs: Mutex::new(BTreeMap::new()),
                shutdown: AtomicBool::new(false),
                seq: AtomicU64::new(0),
                next_client: AtomicU64::new(1),
                counters: Counters::default(),
                buckets: Mutex::new(BTreeMap::new()),
            }),
            recovered,
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle (clone freely; valid before and during `run`).
    ///
    /// # Errors
    ///
    /// Propagates the socket address query failure.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.local_addr()?,
        })
    }

    /// Binds, then serves on a background thread — the in-process form
    /// used by tests and embedders. Returns the control handle.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<ServerHandle> {
        let server = Server::bind(addr, cfg)?;
        let handle = server.handle()?;
        thread::Builder::new()
            .name("sqipd-accept".into())
            .spawn(move || server.run())?;
        Ok(handle)
    }

    /// Serves until [`ServerHandle::shutdown`] is called: spawns the
    /// worker pool and deadline monitor, re-queues journal-recovered
    /// jobs, then accepts connections.
    pub fn run(self) {
        let Server {
            listener,
            shared,
            recovered,
        } = self;
        let shared = &shared;
        thread::scope(|scope| {
            // Thread-spawn failures (fd/memory exhaustion) degrade the
            // pool instead of aborting the server; with zero workers the
            // queue would wedge, so that one case refuses to serve.
            let mut workers = 0usize;
            for w in 0..shared.cfg.workers.max(1) {
                let shared = Arc::clone(shared);
                match thread::Builder::new()
                    .name(format!("sqipd-worker-{w}"))
                    .spawn_scoped(scope, move || worker_loop(&shared))
                {
                    Ok(_) => workers += 1,
                    Err(err) => eprintln!("sqipd: failed to spawn worker {w}: {err}"),
                }
            }
            if workers == 0 {
                eprintln!("sqipd: no workers could be spawned; shutting down");
                initiate_shutdown(shared, listener.local_addr().ok());
                return;
            }
            {
                let shared = Arc::clone(shared);
                if let Err(err) = thread::Builder::new()
                    .name("sqipd-deadline".into())
                    .spawn_scoped(scope, move || deadline_loop(&shared))
                {
                    // Degraded mode: jobs run without timeout
                    // enforcement but cancel/disconnect still work.
                    eprintln!("sqipd: failed to spawn deadline monitor: {err}");
                }
            }

            // Owed work first: journal-recovered jobs enter the queue
            // before any new connection can race a submit in.
            requeue_recovered(shared, recovered);

            for stream in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(shared);
                let client = shared.next_client.fetch_add(1, Ordering::Relaxed);
                // Register here, not in the connection thread: the
                // round-robin cursor must know clients in accept order
                // before any of them can race a submit in.
                shared.queue.register(client);
                // Connection threads are detached: they end when the
                // peer disconnects, and shutdown cancels their jobs.
                let _ = thread::Builder::new()
                    .name(format!("sqipd-conn-{client}"))
                    .spawn(move || serve_connection(&shared, client, stream));
            }
        });
    }
}

/// Flips the shutdown flag once: closes the queue, cancels every job,
/// and (when the listen address is known) nudges the accept loop awake.
///
/// Jobs stopped here are cancelled with [`SHUTDOWN_REASON`] and their
/// journal admissions stay unsettled — the next server to open the
/// journal re-runs them.
fn initiate_shutdown(shared: &Shared, addr: Option<SocketAddr>) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
    shared.cancel_all(SHUTDOWN_REASON);
    if let Some(addr) = addr {
        let _ = TcpStream::connect(addr);
    }
}

/// Re-admits journal-recovered jobs under the reserved
/// [`RECOVERY_CLIENT`]. Their original clients are gone, so results
/// stream into a closed channel — the work (and the journal settling
/// that records it) is the point. A job whose spec no longer builds
/// (say, a runtime-registered design that was not re-registered) is
/// settled as failed rather than recovered forever.
fn requeue_recovered(shared: &Shared, recovered: Vec<PendingJob>) {
    if recovered.is_empty() {
        return;
    }
    shared.queue.register(RECOVERY_CLIENT);
    for pending in recovered {
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let built = pending
            .spec
            .to_experiment()
            .and_then(|e| e.cells().map(|cells| (cells.len(), e)));
        let (cells, experiment) = match built {
            Ok(built) => built,
            Err(err) => {
                eprintln!(
                    "sqipd: journal job `{}` no longer builds ({err}); settling as failed",
                    pending.id
                );
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                shared.settle_journal(Some(pending.seq));
                continue;
            }
        };
        let job = Job {
            key: (RECOVERY_CLIENT, format!("r{}:{}", pending.seq, pending.id)),
            display_id: pending.id.clone(),
            experiment,
            cells,
            accepted_at: Instant::now(),
            // A fresh channel whose receiver is dropped immediately:
            // sends fail fast instead of buffering.
            reply: sync_channel::<Response>(1).0,
            journal_seq: Some(pending.seq),
        };
        let timeout = pending.timeout_ms.unwrap_or(shared.cfg.default_timeout_ms);
        let ctl = Arc::new(JobCtl {
            token: CancelToken::new(),
            deadline: (timeout > 0).then(|| Instant::now() + Duration::from_millis(timeout)),
            reason: Mutex::new(None),
        });
        let key = job.key.clone();
        shared.register(key.clone(), Arc::clone(&ctl));
        match shared.queue.push(RECOVERY_CLIENT, job) {
            Ok(()) => {
                shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(err) => {
                // Left unsettled on purpose: the next restart retries.
                shared.unregister(&key);
                shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "sqipd: could not re-queue journal job `{}`: {err}",
                    pending.id
                );
            }
        }
    }
}

/// Enforces per-job deadlines with a coarse (10 ms) tick — timeouts are
/// budgets, not precision timers.
fn deadline_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        {
            let table = lock_unpoisoned(&shared.jobs);
            let now = Instant::now();
            for ctl in table.values() {
                if let Some(deadline) = ctl.deadline {
                    if now >= deadline && !ctl.token.is_cancelled() {
                        ctl.cancel("timeout");
                    }
                }
            }
        }
        thread::sleep(Duration::from_millis(10));
    }
}

/// Sends a response, blocking on the bounded channel but giving up if
/// `token` (when present) cancels or the connection is gone. Returns
/// `false` once the connection is gone.
fn send_response(
    reply: &SyncSender<Response>,
    token: Option<&CancelToken>,
    message: Response,
) -> bool {
    let mut message = message;
    loop {
        match reply.try_send(message) {
            Ok(()) => return true,
            Err(TrySendError::Disconnected(_)) => return false,
            Err(TrySendError::Full(back)) => {
                if token.is_some_and(CancelToken::is_cancelled) {
                    return false;
                }
                message = back;
                thread::sleep(Duration::from_micros(500));
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        // The job STAYS registered while it runs — that is what lets
        // cancel requests, the deadline monitor, and disconnect cleanup
        // reach its token. `run_job` unregisters it as it settles.
        let ctl = lock_unpoisoned(&shared.jobs)
            .get(&job.key)
            .cloned()
            .unwrap_or_else(|| {
                // The reader raced a disconnect and already dropped the
                // entry — settle as cancelled without running.
                let token = CancelToken::new();
                token.cancel();
                Arc::new(JobCtl {
                    token,
                    deadline: None,
                    reason: Mutex::new(Some("client disconnected")),
                })
            });
        shared.counters.running.fetch_add(1, Ordering::Relaxed);
        run_job(shared, &job, &ctl);
        shared.counters.running.fetch_sub(1, Ordering::Relaxed);
    }
}

fn run_job(shared: &Shared, job: &Job, ctl: &JobCtl) {
    let id = job.display_id.clone();
    if ctl.token.is_cancelled() {
        shared.unregister(&job.key);
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        if ctl.reason() != SHUTDOWN_REASON {
            shared.settle_journal(job.journal_seq);
        }
        send_response(
            &job.reply,
            None,
            Response::Cancelled {
                id,
                reason: ctl.reason().to_string(),
            },
        );
        return;
    }

    let reply = job.reply.clone();
    let row_id = job.display_id.clone();
    let row_token = ctl.token.clone();
    let engine = SweepEngine::new()
        .threads(shared.cfg.threads_per_job.max(1))
        .cancel_token(ctl.token.clone())
        .on_cell(move |event| match event {
            CellEvent::Finished { index, record } => {
                send_response(
                    &reply,
                    Some(&row_token),
                    Response::Row {
                        id: row_id.clone(),
                        index,
                        record,
                    },
                );
            }
            // Cell failures surface through the sweep result below.
            CellEvent::Failed { .. } => {}
        });

    let result = engine.run(&job.experiment);
    // Unregister before answering, so the client can reuse the id the
    // moment it sees the terminal response.
    shared.unregister(&job.key);
    match result {
        Ok(results) => {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            shared.settle_journal(job.journal_seq);
            let seq = shared.seq.fetch_add(1, Ordering::SeqCst);
            send_response(
                &job.reply,
                None,
                Response::Done {
                    id,
                    rows: results.len(),
                    seq,
                    wall_ms: job.accepted_at.elapsed().as_millis() as u64,
                },
            );
        }
        Err(SqipError::Cancelled { .. }) => {
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            // A shutdown cancellation is the one unsettled exit: the
            // journal still owes this job, and the next boot re-runs it.
            if ctl.reason() != SHUTDOWN_REASON {
                shared.settle_journal(job.journal_seq);
            }
            send_response(
                &job.reply,
                None,
                Response::Cancelled {
                    id,
                    reason: ctl.reason().to_string(),
                },
            );
        }
        Err(err) => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            shared.settle_journal(job.journal_seq);
            send_response(
                &job.reply,
                None,
                Response::Error {
                    id,
                    reason: err.to_string(),
                },
            );
        }
    }
}

/// Handles one client: spawns the writer, then reads request lines until
/// EOF, shutdown, or a socket error. On exit, cancels the client's
/// running jobs and drops its queued ones.
fn serve_connection(shared: &Arc<Shared>, client: u64, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // The accept loop already registered this client; re-registering is
    // an idempotent no-op kept for embedders that call this directly.
    shared.queue.register(client);
    let (tx, rx) = sync_channel::<Response>(RESPONSE_CHANNEL_DEPTH);
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // A client that stops reading must not wedge the writer (and through
    // the bounded channel, a worker) forever: a stalled write eventually
    // errors, the writer goes into drain mode, and the channel empties.
    let _ = writer_stream.set_write_timeout(Some(Duration::from_secs(30)));
    let writer = match thread::Builder::new()
        .name(format!("sqipd-write-{client}"))
        .spawn(move || writer_loop(writer_stream, &rx))
    {
        Ok(handle) => handle,
        Err(err) => {
            // No writer means no way to answer; drop the connection
            // before it can submit anything.
            eprintln!("sqipd: failed to spawn writer for client {client}: {err}");
            shared.queue.remove_client(client);
            return;
        }
    };

    reader_loop(shared, client, &stream, &tx);

    // Reader is done (disconnect or shutdown): settle this client.
    shared.cancel_client(client, "client disconnected");
    for job in shared.queue.remove_client(client) {
        if let Some(ctl) = shared.unregister(&job.key) {
            ctl.cancel("client disconnected");
        }
        // Orphaned queued jobs settle here — nobody will ever run them,
        // and nobody is owed their results. Unless the disconnect *is*
        // the shutdown: then the journal still owes them to the next
        // boot.
        if !shared.shutdown.load(Ordering::SeqCst) {
            shared.settle_journal(job.journal_seq);
        }
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
    }
    // The client id is never reused, so its bucket is dead state now.
    lock_unpoisoned(&shared.buckets).remove(&client);
    drop(tx);
    let _ = writer.join();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Drains the response channel onto the socket, one line per message.
/// After a write error it keeps draining (so workers never block on a
/// dead connection) without writing.
fn writer_loop(stream: TcpStream, rx: &Receiver<Response>) {
    let mut out = BufWriter::new(stream);
    let mut dead = false;
    while let Ok(message) = rx.recv() {
        if dead {
            continue;
        }
        let line = to_line(&message);
        if out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush())
            .is_err()
        {
            dead = true;
        }
    }
}

fn reader_loop(shared: &Arc<Shared>, client: u64, stream: &TcpStream, tx: &SyncSender<Response>) {
    let Ok(read_stream) = stream.try_clone() else {
        return;
    };
    let mut lines = BufReader::new(read_stream);
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match lines.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match from_line::<Request>(&line) {
            Ok(req) => req,
            Err(err) => {
                send_response(
                    tx,
                    None,
                    Response::Error {
                        id: String::new(),
                        reason: format!("bad request line: {err}"),
                    },
                );
                continue;
            }
        };
        match request {
            Request::Submit {
                id,
                spec,
                timeout_ms,
            } => handle_submit(shared, client, tx, id, &spec, timeout_ms),
            Request::Cancel { id } => {
                let key = (client, id.clone());
                if shared.cancel_job(&key, "cancel requested") {
                    // The worker reports `cancelled` when it settles the
                    // job; nothing to say yet.
                } else {
                    send_response(
                        tx,
                        None,
                        Response::Error {
                            id,
                            reason: "no such job on this connection".into(),
                        },
                    );
                }
            }
            Request::Ping => {
                send_response(tx, None, Response::Pong);
            }
            Request::Stats => {
                send_response(tx, None, Response::Stats(shared.snapshot()));
            }
            Request::Shutdown => {
                send_response(tx, None, Response::ShuttingDown);
                // The accepted socket's local address shares the
                // listener's port, so it doubles as the nudge target.
                initiate_shutdown(shared, stream.local_addr().ok());
                return;
            }
        }
    }
}

fn handle_submit(
    shared: &Shared,
    client: u64,
    tx: &SyncSender<Response>,
    id: String,
    spec: &sqip::ExperimentSpec,
    timeout_ms: Option<u64>,
) {
    shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        send_response(
            tx,
            None,
            Response::Rejected {
                id,
                reason: "server is shutting down".into(),
            },
        );
        return;
    }

    // Rate limiting comes before validation on purpose: a limited
    // client must not be able to spend server CPU on spec expansion.
    if let Some(rate) = &shared.cfg.rate {
        let now = Instant::now();
        let mut buckets = lock_unpoisoned(&shared.buckets);
        let bucket = buckets
            .entry(client)
            .or_insert_with(|| rate.full_bucket(now));
        let admitted = rate.admit(bucket, now);
        drop(buckets);
        if !admitted {
            shared.counters.rate_limited.fetch_add(1, Ordering::Relaxed);
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            send_response(
                tx,
                None,
                Response::Rejected {
                    id,
                    reason: format!(
                        "rate limited: this client may submit {}/s (burst {})",
                        rate.per_sec, rate.burst
                    ),
                },
            );
            return;
        }
    }

    // Validate before admission: a spec that cannot build an experiment
    // never occupies a queue slot.
    let experiment = match spec.to_experiment() {
        Ok(e) => e,
        Err(err) => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            send_response(
                tx,
                None,
                Response::Error {
                    id,
                    reason: err.to_string(),
                },
            );
            return;
        }
    };
    let cells = match experiment.cells() {
        Ok(cells) => cells.len(),
        Err(err) => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            send_response(
                tx,
                None,
                Response::Error {
                    id,
                    reason: err.to_string(),
                },
            );
            return;
        }
    };
    if cells > shared.cfg.max_cells_per_job {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        send_response(
            tx,
            None,
            Response::Rejected {
                id,
                reason: format!(
                    "job expands to {cells} cells; this server admits at most {}",
                    shared.cfg.max_cells_per_job
                ),
            },
        );
        return;
    }

    let key = (client, id.clone());
    if lock_unpoisoned(&shared.jobs).contains_key(&key) {
        shared.counters.failed.fetch_add(1, Ordering::Relaxed);
        send_response(
            tx,
            None,
            Response::Error {
                id,
                reason: "a job with this id is already queued or running on this connection".into(),
            },
        );
        return;
    }

    let timeout = match timeout_ms {
        Some(ms) => ms,
        None => shared.cfg.default_timeout_ms,
    };
    let ctl = Arc::new(JobCtl {
        token: CancelToken::new(),
        deadline: (timeout > 0).then(|| Instant::now() + Duration::from_millis(timeout)),
        reason: Mutex::new(None),
    });
    shared.register(key.clone(), Arc::clone(&ctl));
    // Journal before the push: once the job is in the queue a worker may
    // finish (and settle) it at any moment, and a settle must never
    // precede its admission.
    let journal_seq = shared
        .journal
        .as_ref()
        .map(|journal| journal.admit(&id, spec, timeout_ms));
    let job = Job {
        key: key.clone(),
        display_id: id.clone(),
        experiment,
        cells,
        accepted_at: Instant::now(),
        reply: tx.clone(),
        journal_seq,
    };
    let cells = job.cells;
    match shared.queue.push(client, job) {
        Ok(()) => {
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            send_response(tx, None, Response::Accepted { id, cells });
        }
        Err(err @ (PushError::Full { .. } | PushError::Closed)) => {
            shared.unregister(&key);
            // Never admitted, nothing owed.
            shared.settle_journal(journal_seq);
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            send_response(
                tx,
                None,
                Response::Rejected {
                    id,
                    reason: err.to_string(),
                },
            );
        }
    }
}
