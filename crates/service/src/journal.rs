//! The persistent job journal: crash-safe accounting of what `sqipd`
//! has promised to run.
//!
//! The server's queue is in-memory; without a journal, killing the
//! process silently drops every queued and running job. With one, each
//! admitted job appends an `admitted` line (its [`ExperimentSpec`], id
//! and timeout) and each *settled* job — completed, failed, timed out,
//! cancelled by its client, or orphaned by a disconnect — appends a
//! `settled` line. A job cancelled *by server shutdown* (or never
//! reached because the process died) is deliberately **not** settled:
//! that is precisely the work a restarted server owes, and
//! [`Journal::open`] hands it back as [`PendingJob`]s for re-admission.
//!
//! The format is append-only JSON lines, one event per line, matched by
//! a monotonic per-journal sequence number. Replay is tolerant of a
//! torn final line (the crash may have interrupted an append); anything
//! else malformed is an error — a journal that cannot be trusted should
//! fail loudly, not replay partially.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};
use sqip::ExperimentSpec;

/// One journal line. `admitted` carries the job; `settled` refers back
/// to it by sequence number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Line {
    /// `"admitted"` or `"settled"`.
    event: String,
    /// The per-journal job sequence number both events share.
    seq: u64,
    /// The client-chosen job id (admitted only).
    id: Option<String>,
    /// The job's timeout request (admitted only).
    timeout_ms: Option<u64>,
    /// The job's spec, as its own canonical JSON (admitted only).
    spec: Option<String>,
}

/// An admitted-but-never-settled job recovered from a journal: what a
/// restarted server re-queues.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingJob {
    /// The journal sequence number the job keeps across restarts, so
    /// settling it after recovery marks the original admission.
    pub seq: u64,
    /// The job id the original client chose.
    pub id: String,
    /// The job's wall-clock budget request.
    pub timeout_ms: Option<u64>,
    /// What to simulate.
    pub spec: ExperimentSpec,
}

/// An append-only journal of admitted and settled jobs.
pub struct Journal {
    path: PathBuf,
    next_seq: AtomicU64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("path", &self.path).finish()
    }
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, replaying its
    /// history: returns the journal positioned for appending plus every
    /// admitted job no `settled` line accounts for, in admission order.
    ///
    /// # Errors
    ///
    /// I/O failures, or corruption anywhere except a torn final line.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<(Journal, Vec<PendingJob>)> {
        let path = path.into();
        // Create the file up front so replay and later appends see the
        // same journal even if nothing has been admitted yet.
        OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let (pending, next_seq) = replay(&path)?;
        Ok((
            Journal {
                path,
                next_seq: AtomicU64::new(next_seq),
            },
            pending,
        ))
    }

    /// The journal's backing file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records an admission, returning the sequence number to settle
    /// with. The line is flushed to the OS before this returns.
    pub fn admit(&self, id: &str, spec: &ExperimentSpec, timeout_ms: Option<u64>) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.append(&Line {
            event: "admitted".to_string(),
            seq,
            id: Some(id.to_string()),
            timeout_ms,
            spec: Some(spec.to_json()),
        });
        seq
    }

    /// Records that the admission with sequence number `seq` settled —
    /// ran to completion, failed, timed out, or was cancelled for any
    /// reason that is *not* a server shutdown. A settled job is never
    /// recovered. Idempotent: duplicate settles are harmless.
    pub fn settle(&self, seq: u64) {
        self.append(&Line {
            event: "settled".to_string(),
            seq,
            id: None,
            timeout_ms: None,
            spec: None,
        });
    }

    fn append(&self, line: &Line) {
        let mut text = match serde_json::to_string(line) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("sqipd: journal line did not serialize: {err}");
                return;
            }
        };
        text.push('\n');
        // One whole line per `write` syscall on an `O_APPEND` fd: the
        // kernel serializes concurrent appenders, so no lock is held
        // across the write. Best-effort durability — a journal write
        // failure must not take the serving path down, but it should
        // be loud.
        let written = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .and_then(|mut file| {
                file.write_all(text.as_bytes())?;
                file.sync_data()
            });
        if let Err(err) = written {
            eprintln!("sqipd: journal append failed: {err}");
        }
    }
}

/// Replays `path`: pending admissions (in admission order) and the next
/// free sequence number.
fn replay(path: &Path) -> std::io::Result<(Vec<PendingJob>, u64)> {
    let corrupt = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let reader = BufReader::new(File::open(path)?);
    let mut pending: Vec<PendingJob> = Vec::new();
    let mut next_seq = 0u64;
    let mut lines = reader.lines().peekable();
    let mut number = 0usize;
    while let Some(line) = lines.next() {
        let line = line?;
        number += 1;
        if line.trim().is_empty() {
            continue;
        }
        let parsed: Line = match serde_json::from_str(&line) {
            Ok(parsed) => parsed,
            // A torn *final* line is the expected shape of a crash
            // mid-append; anywhere else, refuse to trust the journal.
            Err(err) if lines.peek().is_none() => {
                eprintln!(
                    "sqipd: journal {}: ignoring torn final line: {err}",
                    path.display()
                );
                break;
            }
            Err(err) => {
                return Err(corrupt(format!(
                    "journal {} line {number}: {err}",
                    path.display()
                )));
            }
        };
        next_seq = next_seq.max(parsed.seq + 1);
        match parsed.event.as_str() {
            "admitted" => {
                let (id, spec) = match (parsed.id, parsed.spec) {
                    (Some(id), Some(spec)) => (id, spec),
                    _ => {
                        return Err(corrupt(format!(
                            "journal {} line {number}: admitted line without id/spec",
                            path.display()
                        )));
                    }
                };
                let spec = ExperimentSpec::from_json(&spec).map_err(|err| {
                    corrupt(format!(
                        "journal {} line {number}: bad spec: {err}",
                        path.display()
                    ))
                })?;
                // Duplicate admissions of one seq (a recovery re-admit)
                // collapse to the latest.
                pending.retain(|p| p.seq != parsed.seq);
                pending.push(PendingJob {
                    seq: parsed.seq,
                    id,
                    timeout_ms: parsed.timeout_ms,
                    spec,
                });
            }
            "settled" => pending.retain(|p| p.seq != parsed.seq),
            other => {
                return Err(corrupt(format!(
                    "journal {} line {number}: unknown event `{other}`",
                    path.display()
                )));
            }
        }
    }
    Ok((pending, next_seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqip-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.jsonl"));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::new(["gzip"], ["associative-3"])
    }

    #[test]
    fn admit_settle_replay_round_trips() {
        let path = scratch("roundtrip");
        {
            let (journal, pending) = Journal::open(&path).unwrap();
            assert!(pending.is_empty());
            let a = journal.admit("job-a", &spec(), Some(5_000));
            let b = journal.admit("job-b", &spec(), None);
            assert_ne!(a, b);
            journal.settle(a);
        }
        let (journal, pending) = Journal::open(&path).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id, "job-b");
        assert_eq!(pending[0].timeout_ms, None);
        assert_eq!(pending[0].spec, spec());

        // Settling the recovered job empties the journal's debt.
        journal.settle(pending[0].seq);
        drop(journal);
        let (_, pending) = Journal::open(&path).unwrap();
        assert!(pending.is_empty());
    }

    #[test]
    fn sequence_numbers_survive_restarts() {
        let path = scratch("seqs");
        let first = {
            let (journal, _) = Journal::open(&path).unwrap();
            journal.admit("early", &spec(), None)
        };
        let (journal, _) = Journal::open(&path).unwrap();
        let second = journal.admit("late", &spec(), None);
        assert!(second > first, "seqs stay monotonic across restarts");
    }

    #[test]
    fn torn_final_line_is_ignored_earlier_corruption_is_fatal() {
        let path = scratch("torn");
        {
            let (journal, _) = Journal::open(&path).unwrap();
            journal.admit("kept", &spec(), None);
        }
        // Simulate a crash mid-append: a torn trailing line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"event\":\"admitted\",\"seq\":9,\"i")
                .unwrap();
        }
        let (_, pending) = Journal::open(&path).unwrap();
        assert_eq!(pending.len(), 1, "torn tail dropped, history kept");

        // The same garbage mid-file is corruption, not a crash artifact.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("not json at all\n{text}")).unwrap();
        assert!(Journal::open(&path).is_err());
    }
}
