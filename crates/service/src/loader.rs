//! The `sqip-loader` load-generation harness: seeded random-but-valid
//! job streams against a `sqipd` server, with SLO verification.
//!
//! A run has up to three phases:
//!
//! 1. **Steady state** — `clients` concurrent connections each submit
//!    `jobs_per_client` randomized jobs (drawn from the design registry
//!    and the generator-workload grammar), retrying admission rejects,
//!    verifying every streamed row arrives exactly once, and recording
//!    per-job latency. All randomness flows from `seed`, so two runs
//!    with the same seed against the same binary produce the **same
//!    digest** — bit-identical repeatability, over the wire.
//! 2. **Burst** (optional) — one connection pipelines more long jobs
//!    than `queue_capacity + workers` can hold, proving the server
//!    *rejects* the overflow cleanly (no dropped connections, no lost
//!    responses) and still serves a follow-up job.
//! 3. **Repeat** (optional) — phase 1 again; the digest must match.
//!
//! The outcome is a [`LoadReport`] (JSON-serializable) with percentile
//! latencies, throughput, and a pass/fail verdict per SLO.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use sqip::{DesignRegistry, ExperimentSpec};

use crate::client::{Connection, JobOutcome, JobStatus};
use crate::protocol::{Request, Response, StatsSnapshot};

/// How many times a rejected job is resubmitted before the loader gives
/// up and counts it failed.
const MAX_REJECT_RETRIES: u64 = 1_000;

/// Backoff between admission retries.
const RETRY_BACKOFF: Duration = Duration::from_millis(20);

/// What the loader should do.
#[derive(Debug, Clone)]
pub struct LoaderConfig {
    /// Server address, e.g. `127.0.0.1:4771`.
    pub addr: String,
    /// Concurrent steady-state clients.
    pub clients: usize,
    /// Jobs each client submits per steady-state pass.
    pub jobs_per_client: usize,
    /// Root seed; everything random derives from it.
    pub seed: u64,
    /// p99 latency SLO bound, milliseconds.
    pub p99_ms: u64,
    /// Per-job timeout forwarded to the server (`None` = server
    /// default).
    pub timeout_ms: Option<u64>,
    /// Upper bound on generated workload length, in instructions.
    pub max_insts: u64,
    /// Run the burst (queue-full) phase.
    pub burst: bool,
    /// Run the steady phase twice and require identical digests.
    pub repeat: bool,
    /// Send a `shutdown` request when done (CI teardown).
    pub shutdown_after: bool,
}

impl Default for LoaderConfig {
    fn default() -> Self {
        LoaderConfig {
            addr: "127.0.0.1:4771".into(),
            clients: 8,
            jobs_per_client: 4,
            seed: 0xC0FF_EE00,
            p99_ms: 60_000,
            timeout_ms: None,
            max_insts: 200_000,
            burst: true,
            repeat: false,
            shutdown_after: false,
        }
    }
}

impl LoaderConfig {
    /// The CI soak preset: small jobs, every phase on, tight enough to
    /// finish in well under a minute yet still exercise ≥8 concurrent
    /// clients, admission control, and repeatability.
    #[must_use]
    pub fn quick(addr: impl Into<String>) -> LoaderConfig {
        LoaderConfig {
            addr: addr.into(),
            clients: 8,
            jobs_per_client: 2,
            max_insts: 60_000,
            burst: true,
            repeat: true,
            ..LoaderConfig::default()
        }
    }
}

/// Latency percentiles over successful steady-state jobs, milliseconds.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
}

/// What the burst phase observed.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct BurstReport {
    /// Jobs pipelined at once.
    pub submitted: u64,
    /// Admitted and completed.
    pub completed: u64,
    /// Turned away by admission control.
    pub rejected: u64,
    /// Cancelled (e.g. by timeout) — should stay 0.
    pub cancelled: u64,
    /// Every submit received a terminal response.
    pub all_answered: bool,
    /// A follow-up job after the burst completed normally.
    pub followup_ok: bool,
}

/// Per-SLO verdicts; `pass` is their conjunction.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SloReport {
    /// p99 latency within the configured bound.
    pub p99_ok: bool,
    /// Zero lost, duplicated, or corrupted rows; zero failed jobs.
    pub rows_ok: bool,
    /// Burst overflow rejected cleanly and served afterwards (true when
    /// the phase is disabled).
    pub burst_ok: bool,
    /// Identical digest across repeated passes (true when disabled).
    pub repeat_ok: bool,
    /// Server queue high-water stayed within its capacity.
    pub queue_bounded_ok: bool,
    /// All of the above.
    pub pass: bool,
}

/// The loader's full result, serialized as the soak artifact.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Root seed the run derived from.
    pub seed: u64,
    /// Steady-state client count.
    pub clients: u64,
    /// Jobs per client per pass.
    pub jobs_per_client: u64,
    /// Jobs that ran to verified completion.
    pub jobs_completed: u64,
    /// Jobs that ended failed/cancelled/incomplete.
    pub jobs_failed: u64,
    /// Admission rejections absorbed by retry.
    pub reject_retries: u64,
    /// Result rows received and verified.
    pub rows_received: u64,
    /// Steady-state wall time, milliseconds.
    pub wall_ms: u64,
    /// Verified rows per second of steady-state wall time.
    pub rows_per_sec: f64,
    /// Latency percentiles.
    pub latency: LatencySummary,
    /// FNV-1a digest over every spec and row, hex.
    pub digest: String,
    /// Digest of the repeat pass (when run).
    pub repeat_digest: Option<String>,
    /// Burst-phase observations (when run).
    pub burst: Option<BurstReport>,
    /// Server stats snapshot taken after all phases.
    pub server: Option<StatsSnapshot>,
    /// The verdicts.
    pub slo: SloReport,
}

/// FNV-1a, 64-bit — stable, dependency-free fingerprint for the
/// repeatability SLO.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Draws a random-but-valid spec: 1–2 generator workloads × 1–3 distinct
/// registered designs, sometimes with a one-knob variant.
fn random_spec(rng: &mut SmallRng, max_insts: u64) -> ExperimentSpec {
    let insts = |rng: &mut SmallRng| rng.gen_range(max_insts / 4..max_insts + 1).max(1_000);
    let mut workloads = Vec::new();
    for _ in 0..rng.gen_range(1..3u32) {
        let name = match rng.gen_range(0..3u32) {
            0 => format!("mix:{:#x}:{}", rng.gen_range(1..1u64 << 32), insts(rng)),
            1 => {
                let nodes = 1usize << rng.gen_range(6..10u32);
                let stride = 1usize << rng.gen_range(4..9u32);
                format!("chase:{nodes}:{stride}:{}", insts(rng))
            }
            _ => {
                let stride = 1usize << rng.gen_range(3..10u32);
                format!("stride:{stride}:{}", insts(rng))
            }
        };
        workloads.push(name);
    }

    let all_designs = DesignRegistry::global().names();
    let picks = rng.gen_range(1..3usize.min(all_designs.len()) + 1);
    let mut designs: Vec<String> = Vec::new();
    while designs.len() < picks {
        let d = all_designs[rng.gen_range(0..all_designs.len())].to_string();
        if !designs.contains(&d) {
            designs.push(d);
        }
    }

    let mut spec = ExperimentSpec::new(workloads, designs);
    if rng.gen_range(0..2u32) == 1 {
        let (knob, value) = match rng.gen_range(0..4u32) {
            0 => ("rob_size", 1u64 << rng.gen_range(6..9u32)),
            1 => ("fsp_entries", 1 << rng.gen_range(7..10u32)),
            2 => ("iq_size", 1 << rng.gen_range(5..7u32)),
            _ => ("ssn_bits", u64::from(rng.gen_range(10..15u32))),
        };
        spec = spec.variant(format!("{knob}-{value}"), vec![(knob.to_string(), value)]);
    }
    spec
}

/// One steady-state job's verified outcome.
struct JobRun {
    ok: bool,
    latency: Duration,
    rows: u64,
    reject_retries: u64,
    /// Bytes folded into the run digest: the spec, then rows by index.
    digest_bytes: Vec<u8>,
}

/// Submits one job, retrying admission rejects, and verifies the rows.
fn run_one_job(
    conn: &mut Connection,
    id: &str,
    spec: &ExperimentSpec,
    timeout_ms: Option<u64>,
) -> io::Result<JobRun> {
    let mut retries = 0u64;
    loop {
        let started = Instant::now();
        let outcome: JobOutcome = conn.run_job(id, spec, timeout_ms)?;
        match outcome.status {
            Some(JobStatus::Rejected(_)) if retries < MAX_REJECT_RETRIES => {
                retries += 1;
                thread::sleep(RETRY_BACKOFF);
                continue;
            }
            Some(JobStatus::Done) => {
                let ok = outcome.is_complete();
                let mut digest_bytes = spec.to_json().into_bytes();
                digest_bytes.push(b'\n');
                let mut rows = outcome.rows;
                rows.sort_by_key(|(index, _)| *index);
                for (_, record) in &rows {
                    digest_bytes.extend_from_slice(record.to_json().as_bytes());
                    digest_bytes.push(b'\n');
                }
                return Ok(JobRun {
                    ok,
                    latency: started.elapsed(),
                    rows: rows.len() as u64,
                    reject_retries: retries,
                    digest_bytes,
                });
            }
            _ => {
                return Ok(JobRun {
                    ok: false,
                    latency: started.elapsed(),
                    rows: outcome.rows.len() as u64,
                    reject_retries: retries,
                    digest_bytes: Vec::new(),
                })
            }
        }
    }
}

struct SteadyResult {
    completed: u64,
    failed: u64,
    reject_retries: u64,
    rows: u64,
    wall: Duration,
    latencies: Vec<Duration>,
    digest: String,
}

/// Phase 1/3: all clients at once, then a client-major deterministic
/// digest fold.
fn steady_phase(cfg: &LoaderConfig) -> io::Result<SteadyResult> {
    let started = Instant::now();
    let failures = AtomicU64::new(0);
    let mut per_client: Vec<io::Result<Vec<JobRun>>> = Vec::new();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..cfg.clients {
            let cfg = &*cfg;
            let failures = &failures;
            handles.push(scope.spawn(move || -> io::Result<Vec<JobRun>> {
                // Splitmix-style per-client stream: independent of
                // scheduling, reproducible from the root seed.
                let mut rng = SmallRng::seed_from_u64(
                    cfg.seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut conn = Connection::connect(&cfg.addr)?;
                let mut runs = Vec::new();
                for job in 0..cfg.jobs_per_client {
                    let spec = random_spec(&mut rng, cfg.max_insts);
                    let id = format!("c{client}-j{job}");
                    let run = run_one_job(&mut conn, &id, &spec, cfg.timeout_ms)?;
                    if !run.ok {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                    runs.push(run);
                }
                Ok(runs)
            }));
        }
        for handle in handles {
            per_client.push(
                handle.join().unwrap_or_else(|_| {
                    Err(io::Error::other("steady-state client thread panicked"))
                }),
            );
        }
    });

    let wall = started.elapsed();
    let mut out = SteadyResult {
        completed: 0,
        failed: failures.load(Ordering::Relaxed),
        reject_retries: 0,
        rows: 0,
        wall,
        latencies: Vec::new(),
        digest: String::new(),
    };
    let mut fnv = Fnv::new();
    for client in per_client {
        let runs = client?;
        for run in runs {
            out.reject_retries += run.reject_retries;
            if run.ok {
                out.completed += 1;
                out.rows += run.rows;
                out.latencies.push(run.latency);
                fnv.update(&run.digest_bytes);
            }
        }
    }
    out.digest = fnv.hex();
    Ok(out)
}

/// Phase 2: pipeline `queue_capacity + workers + 4` long jobs on one
/// connection; the overflow must be *rejected*, everything must be
/// answered, and the connection must still work afterwards.
fn burst_phase(cfg: &LoaderConfig, stats: StatsSnapshot) -> io::Result<BurstReport> {
    let total = (stats.queue_capacity + stats.workers + 4) as usize;
    let mut conn = Connection::connect(&cfg.addr)?;
    conn.set_read_timeout(Some(Duration::from_secs(120)))?;

    let long = cfg.max_insts.max(1_000_000) * 2;
    for b in 0..total {
        conn.send(&Request::Submit {
            id: format!("burst-{b}"),
            spec: ExperimentSpec::new(
                [format!("mix:{:#x}:{long}", cfg.seed | 1)],
                ["ideal-oracle"],
            ),
            timeout_ms: Some(180_000),
        })?;
    }

    let mut report = BurstReport {
        submitted: total as u64,
        ..BurstReport::default()
    };
    // A job is settled by: rejected, cancelled, error, or done. Rows
    // stream interleaved; count terminals until all are accounted for.
    let mut settled = 0usize;
    while settled < total {
        match conn.recv() {
            Ok(Response::Done { .. }) => {
                report.completed += 1;
                settled += 1;
            }
            Ok(Response::Rejected { .. }) => {
                report.rejected += 1;
                settled += 1;
            }
            Ok(Response::Cancelled { .. }) => {
                report.cancelled += 1;
                settled += 1;
            }
            Ok(Response::Error { .. }) => {
                settled += 1;
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }
    report.all_answered = settled == total;

    // The queue has drained; a fresh job must sail through.
    let followup = conn.run_job(
        "burst-followup",
        &ExperimentSpec::new(["stride:8:20k"], ["ideal-oracle"]),
        cfg.timeout_ms,
    )?;
    report.followup_ok = followup.is_complete();
    Ok(report)
}

fn percentile(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

fn server_stats(addr: &str) -> io::Result<StatsSnapshot> {
    let mut conn = Connection::connect(addr)?;
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    conn.send(&Request::Stats)?;
    loop {
        if let Response::Stats(snapshot) = conn.recv()? {
            return Ok(snapshot);
        }
    }
}

/// Runs the configured phases and renders the verdicts.
///
/// # Errors
///
/// Propagates connection failures; SLO violations are reported in the
/// returned [`LoadReport`], not as errors.
pub fn run_load(cfg: &LoaderConfig) -> io::Result<LoadReport> {
    let steady = steady_phase(cfg)?;

    let burst = if cfg.burst {
        Some(burst_phase(cfg, server_stats(&cfg.addr)?)?)
    } else {
        None
    };

    let repeat_digest = if cfg.repeat {
        Some(steady_phase(cfg)?.digest)
    } else {
        None
    };

    let server = server_stats(&cfg.addr).ok();
    if cfg.shutdown_after {
        if let Ok(mut conn) = Connection::connect(&cfg.addr) {
            let _ = conn.send(&Request::Shutdown);
        }
    }

    let mut latencies = steady.latencies.clone();
    latencies.sort();
    let latency = LatencySummary {
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        p99_ms: percentile(&latencies, 99.0),
        max_ms: latencies.last().map_or(0.0, |d| d.as_secs_f64() * 1e3),
    };

    let expected_jobs = (cfg.clients * cfg.jobs_per_client) as u64;
    let slo_p99 = latency.p99_ms <= cfg.p99_ms as f64;
    let slo_rows = steady.failed == 0 && steady.completed == expected_jobs;
    let slo_burst = burst
        .as_ref()
        .is_none_or(|b| b.all_answered && b.rejected >= 1 && b.followup_ok && b.cancelled == 0);
    let slo_repeat = repeat_digest.as_ref().is_none_or(|d| *d == steady.digest);
    let slo_queue = server
        .as_ref()
        .is_none_or(|s| s.queue_high_water <= s.queue_capacity);

    let slo = SloReport {
        p99_ok: slo_p99,
        rows_ok: slo_rows,
        burst_ok: slo_burst,
        repeat_ok: slo_repeat,
        queue_bounded_ok: slo_queue,
        pass: slo_p99 && slo_rows && slo_burst && slo_repeat && slo_queue,
    };

    let wall_ms = steady.wall.as_millis() as u64;
    Ok(LoadReport {
        seed: cfg.seed,
        clients: cfg.clients as u64,
        jobs_per_client: cfg.jobs_per_client as u64,
        jobs_completed: steady.completed,
        jobs_failed: steady.failed,
        reject_retries: steady.reject_retries,
        rows_received: steady.rows,
        wall_ms,
        rows_per_sec: if wall_ms == 0 {
            0.0
        } else {
            steady.rows as f64 / (wall_ms as f64 / 1e3)
        },
        latency,
        digest: steady.digest,
        repeat_digest,
        burst,
        server,
        slo,
    })
}
