//! Simulation as a service: the `sqipd` sweep server and the
//! `sqip-loader` load-generation harness.
//!
//! The `sqip` crate runs experiments in-process; this crate puts that
//! engine behind a socket so long sweep campaigns can be driven
//! remotely, shared between users, and soak-tested:
//!
//! - [`Server`] (the `sqipd` binary) accepts [`ExperimentSpec`
//!   jobs](sqip::ExperimentSpec) over a JSON-lines TCP protocol,
//!   validates them against the design and workload registries before
//!   admission, queues them in a bounded client-fair queue, runs them on
//!   [`SweepEngine`](sqip::SweepEngine) workers with cooperative
//!   cancellation and per-job timeouts, and **streams each result row
//!   as its cell finishes** — bit-identical to the batch artifact.
//! - [`run_load`] (the `sqip-loader` binary) drives a server with
//!   seeded concurrent clients and verifies the service-level
//!   objectives: no lost or duplicated rows, bounded queue memory,
//!   clean admission rejections under overload, and bit-identical
//!   repeatability from the same seed.
//!
//! See [`protocol`] for the wire format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod journal;
pub mod loader;
pub mod protocol;
pub mod queue;
pub mod server;

/// Locks `m`, recovering the guard if another thread panicked while
/// holding it. The service never trusts cross-thread invariants enough
/// for poisoning to add safety — every structure behind these locks is
/// resynchronized defensively by its readers — so propagating a poison
/// panic would only convert one thread's failure into a server-wide
/// outage.
pub(crate) fn lock_unpoisoned<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub use client::{Connection, JobOutcome, JobStatus};
pub use journal::{Journal, PendingJob};
pub use loader::{run_load, BurstReport, LatencySummary, LoadReport, LoaderConfig, SloReport};
pub use protocol::{Request, Response, StatsSnapshot};
pub use queue::{FairQueue, PushError};
pub use server::{RateLimit, Server, ServerConfig, ServerHandle};
