//! [`Snapshot`] impls for the ISA-level types that appear inside
//! checkpointed simulator state (trace records buffered in the core's
//! record window).

use sqip_snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};
use sqip_types::DataSize;

use crate::op::Op;
use crate::reg::{Reg, NUM_REGS};
use crate::trace::TraceRecord;

impl Snapshot for Reg {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.put_u8(self.index() as u8);
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<Reg, SnapError> {
        let idx = r.get_u8()?;
        if (idx as usize) >= NUM_REGS {
            return Err(SnapError::Corrupt(format!("register index {idx}")));
        }
        Ok(Reg::new(idx))
    }
}

impl Snapshot for Op {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        let tag: u8 = match self {
            Op::Add => 0,
            Op::Sub => 1,
            Op::Mul => 2,
            Op::And => 3,
            Op::Or => 4,
            Op::Xor => 5,
            Op::Shl => 6,
            Op::Shr => 7,
            Op::CmpLt => 8,
            Op::CmpEq => 9,
            Op::AddImm => 10,
            Op::MulImm => 11,
            Op::LoadImm => 12,
            Op::FAdd => 13,
            Op::FMul => 14,
            Op::FDiv => 15,
            Op::Load(_) => 16,
            Op::Store(_) => 17,
            Op::BranchZ => 18,
            Op::BranchNZ => 19,
            Op::Jump => 20,
            Op::Call => 21,
            Op::Ret => 22,
            Op::Nop => 23,
            Op::Halt => 24,
        };
        w.put_u8(tag);
        if let Op::Load(s) | Op::Store(s) = self {
            s.save(w)?;
        }
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<Op, SnapError> {
        Ok(match r.get_u8()? {
            0 => Op::Add,
            1 => Op::Sub,
            2 => Op::Mul,
            3 => Op::And,
            4 => Op::Or,
            5 => Op::Xor,
            6 => Op::Shl,
            7 => Op::Shr,
            8 => Op::CmpLt,
            9 => Op::CmpEq,
            10 => Op::AddImm,
            11 => Op::MulImm,
            12 => Op::LoadImm,
            13 => Op::FAdd,
            14 => Op::FMul,
            15 => Op::FDiv,
            16 => Op::Load(DataSize::load(r)?),
            17 => Op::Store(DataSize::load(r)?),
            18 => Op::BranchZ,
            19 => Op::BranchNZ,
            20 => Op::Jump,
            21 => Op::Call,
            22 => Op::Ret,
            23 => Op::Nop,
            24 => Op::Halt,
            t => return Err(SnapError::Corrupt(format!("Op tag {t}"))),
        })
    }
}

sqip_snapshot::snapshot_struct!(TraceRecord {
    seq,
    pc,
    op,
    dst,
    srcs,
    imm,
    addr,
    size,
    result,
    taken,
    next_pc,
});

#[cfg(test)]
mod tests {
    use super::*;
    use sqip_types::{Addr, Pc, Seq};

    fn roundtrip<T: Snapshot>(v: &T) -> T {
        let mut w = SnapWriter::new();
        v.save(&mut w).unwrap();
        let mut bytes = Vec::new();
        w.finish(&mut bytes).unwrap();
        let mut r = SnapReader::new(&mut bytes.as_slice()).unwrap();
        let out = T::load(&mut r).unwrap();
        r.finish().unwrap();
        out
    }

    #[test]
    fn record_roundtrips() {
        let rec = TraceRecord {
            seq: Seq(7),
            pc: Pc::new(0x40),
            op: Op::Store(DataSize::Half),
            dst: None,
            srcs: [Some(Reg::new(3)), Some(Reg::new(63))],
            imm: -128,
            addr: Some(Addr::new(0x2000)),
            size: DataSize::Half,
            result: 0xBEEF,
            taken: false,
            next_pc: Pc::new(0x48),
        };
        assert_eq!(roundtrip(&rec), rec);
        assert_eq!(roundtrip(&TraceRecord::default()), TraceRecord::default());
    }

    #[test]
    fn all_ops_roundtrip() {
        let ops = [
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Shl,
            Op::Shr,
            Op::CmpLt,
            Op::CmpEq,
            Op::AddImm,
            Op::MulImm,
            Op::LoadImm,
            Op::FAdd,
            Op::FMul,
            Op::FDiv,
            Op::Load(DataSize::Byte),
            Op::Store(DataSize::Quad),
            Op::BranchZ,
            Op::BranchNZ,
            Op::Jump,
            Op::Call,
            Op::Ret,
            Op::Nop,
            Op::Halt,
        ];
        for op in ops {
            assert_eq!(roundtrip(&op), op);
        }
    }

    #[test]
    fn bad_register_index_is_corrupt_not_panic() {
        let mut w = SnapWriter::new();
        w.put_u8(NUM_REGS as u8);
        let mut bytes = Vec::new();
        w.finish(&mut bytes).unwrap();
        let mut r = SnapReader::new(&mut bytes.as_slice()).unwrap();
        match Reg::load(&mut r) {
            Err(SnapError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
