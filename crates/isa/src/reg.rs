//! Architectural registers.

/// Number of architectural registers.
pub const NUM_REGS: usize = 64;

/// An architectural register name, `r0`–`r63`.
///
/// `r0` ([`Reg::ZERO`]) is hardwired to zero, Alpha/MIPS style: writes to it
/// are discarded and reads always return 0. This gives programs a free
/// constant and gives the renamer a register that never creates
/// dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    #[must_use]
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < NUM_REGS,
            "register index {index} out of range (max {})",
            NUM_REGS - 1
        );
        Reg(index)
    }

    /// The register's index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert_eq!(Reg::default(), Reg::ZERO);
    }

    #[test]
    fn index_round_trip() {
        for i in 0..NUM_REGS as u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = Reg::new(NUM_REGS as u8);
    }

    #[test]
    fn displays_like_assembly() {
        assert_eq!(Reg::new(17).to_string(), "r17");
    }
}
