//! Static instructions.

use sqip_types::DataSize;

use crate::op::Op;
use crate::reg::Reg;

/// One static instruction: an operation plus register operands and an
/// immediate.
///
/// The encoding is deliberately uniform — every instruction has optional
/// `dst`, `src1`, `src2` and a 64-bit immediate — so the pipeline stages
/// can treat all instructions alike and the rename logic needs no special
/// cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticInst {
    /// The operation.
    pub op: Op,
    /// Destination register, if the instruction writes one.
    pub dst: Option<Reg>,
    /// First source (address base for memory ops, condition for branches).
    pub src1: Option<Reg>,
    /// Second source (store data register).
    pub src2: Option<Reg>,
    /// Immediate: displacement for memory ops, target instruction index for
    /// branches/jumps/calls, literal for `LoadImm`/`AddImm`/`MulImm`.
    pub imm: i64,
}

impl StaticInst {
    /// A no-op.
    #[must_use]
    pub fn nop() -> StaticInst {
        StaticInst {
            op: Op::Nop,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
        }
    }

    /// The registers this instruction reads, zero register excluded
    /// (reads of `r0` never create dependences).
    #[must_use]
    pub fn sources(&self) -> [Option<Reg>; crate::MAX_SRCS] {
        let keep = |r: Option<Reg>| r.filter(|r| !r.is_zero());
        [keep(self.src1), keep(self.src2)]
    }

    /// The register this instruction writes, zero register excluded
    /// (writes to `r0` are discarded).
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        self.dst.filter(|r| !r.is_zero())
    }

    /// Memory access width, for loads and stores.
    #[must_use]
    pub fn mem_size(&self) -> Option<DataSize> {
        self.op.mem_size()
    }
}

impl std::fmt::Display for StaticInst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        if let Some(s) = self.src1 {
            write!(f, ", {s}")?;
        }
        if let Some(s) = self.src2 {
            write!(f, ", {s}")?;
        }
        if self.imm != 0 {
            write!(f, ", {}", self.imm)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_creates_no_dependences() {
        let i = StaticInst {
            op: Op::Add,
            dst: Some(Reg::ZERO),
            src1: Some(Reg::ZERO),
            src2: Some(Reg::new(3)),
            imm: 0,
        };
        assert_eq!(i.dest(), None, "writes to r0 are discarded");
        assert_eq!(i.sources(), [None, Some(Reg::new(3))]);
    }

    #[test]
    fn nop_touches_nothing() {
        let n = StaticInst::nop();
        assert_eq!(n.dest(), None);
        assert_eq!(n.sources(), [None, None]);
        assert_eq!(n.mem_size(), None);
    }

    #[test]
    fn display_is_readable() {
        let i = StaticInst {
            op: Op::AddImm,
            dst: Some(Reg::new(5)),
            src1: Some(Reg::new(5)),
            src2: None,
            imm: 8,
        };
        assert_eq!(i.to_string(), "addimm r5, r5, 8");
    }
}
