//! Error type for program construction and execution.

/// Errors produced while building or executing a micro-ISA program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A branch referenced a label that was never placed.
    UnresolvedLabel {
        /// The label's name.
        name: String,
    },
    /// A label was placed twice.
    DuplicateLabel {
        /// The label's name.
        name: String,
    },
    /// Execution ran past the end of the program without a `halt`.
    PcOutOfRange {
        /// The offending instruction index.
        index: usize,
    },
    /// Execution exceeded the caller's dynamic instruction budget without
    /// reaching `halt`.
    InstructionBudgetExceeded {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// The program is empty.
    EmptyProgram,
    /// A trace file could not be read or written (underlying I/O failure).
    TraceIo {
        /// What was being done, and the I/O error text.
        detail: String,
    },
    /// A trace file's contents are malformed: bad magic, unsupported
    /// version, truncation, or an undecodable record.
    TraceFormat {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for IsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsaError::UnresolvedLabel { name } => {
                write!(f, "branch target label `{name}` was never placed")
            }
            IsaError::DuplicateLabel { name } => {
                write!(f, "label `{name}` was placed more than once")
            }
            IsaError::PcOutOfRange { index } => {
                write!(
                    f,
                    "execution reached instruction index {index}, past program end"
                )
            }
            IsaError::InstructionBudgetExceeded { budget } => {
                write!(
                    f,
                    "program did not halt within {budget} dynamic instructions"
                )
            }
            IsaError::EmptyProgram => write!(f, "program contains no instructions"),
            IsaError::TraceIo { detail } => write!(f, "trace file I/O failed: {detail}"),
            IsaError::TraceFormat { detail } => write!(f, "malformed trace file: {detail}"),
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_prose() {
        let e = IsaError::UnresolvedLabel {
            name: "loop".into(),
        };
        assert!(e.to_string().contains("`loop`"));
        let e = IsaError::InstructionBudgetExceeded { budget: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_err<E: std::error::Error + Send + Sync>(_: E) {}
        takes_err(IsaError::EmptyProgram);
    }
}
