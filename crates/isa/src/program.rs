//! Programs and the label-resolving builder ("assembler").

use std::collections::BTreeMap;

use sqip_types::{DataSize, Pc};

use crate::error::IsaError;
use crate::inst::StaticInst;
use crate::op::Op;
use crate::reg::Reg;

/// A forward-referencable position in a program under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An executable program: a flat instruction array starting at PC 0.
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<StaticInst>,
}

impl Program {
    /// The instruction at `pc`, or `None` past the end.
    #[must_use]
    pub fn fetch(&self, pc: Pc) -> Option<&StaticInst> {
        self.insts.get(pc.index())
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterates over (PC, instruction) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &StaticInst)> {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, inst)| (Pc::from_index(i), inst))
    }
}

/// Builds [`Program`]s with labels and a conventional assembler surface.
///
/// # Example
///
/// ```
/// use sqip_isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let r1 = Reg::new(1);
/// b.load_imm(r1, 3);
/// let top = b.label("loop");
/// b.add_imm(r1, r1, -1);
/// b.branch_nz(r1, top);
/// b.halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), sqip_isa::IsaError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<StaticInst>,
    labels: BTreeMap<String, usize>,
    /// (instruction index, label name) pairs awaiting resolution.
    fixups: Vec<(usize, String)>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Number of instructions emitted so far (== the index of the next).
    #[must_use]
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Places a label at the current position and returns it for later
    /// reference. The same `Label` may also be referenced *before* being
    /// placed via [`ProgramBuilder::forward_label`].
    pub fn label(&mut self, name: &str) -> Label {
        if self
            .labels
            .insert(name.to_owned(), self.insts.len())
            .is_some()
        {
            self.duplicate.get_or_insert_with(|| name.to_owned());
        }
        Label(self.insts.len())
    }

    /// Declares a label that will be placed later with
    /// [`ProgramBuilder::place`]. Branches to it are fixed up at build time.
    pub fn forward_label(&mut self, name: &str) -> String {
        name.to_owned()
    }

    /// Places a previously declared forward label here.
    pub fn place(&mut self, name: &str) {
        if self
            .labels
            .insert(name.to_owned(), self.insts.len())
            .is_some()
        {
            self.duplicate.get_or_insert_with(|| name.to_owned());
        }
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: StaticInst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// `dst = imm`.
    pub fn load_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.emit(StaticInst {
            op: Op::LoadImm,
            dst: Some(dst),
            src1: None,
            src2: None,
            imm,
        })
    }

    /// `dst = src1 + src2`.
    pub fn add(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(Op::Add, dst, src1, src2)
    }

    /// `dst = src1 - src2`.
    pub fn sub(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(Op::Sub, dst, src1, src2)
    }

    /// `dst = src1 * src2` (integer multiplier).
    pub fn mul(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(Op::Mul, dst, src1, src2)
    }

    /// `dst = src1 ^ src2`.
    pub fn xor(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(Op::Xor, dst, src1, src2)
    }

    /// `dst = src1 & src2`.
    pub fn and(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(Op::And, dst, src1, src2)
    }

    /// `dst = src1 | src2`.
    pub fn or(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(Op::Or, dst, src1, src2)
    }

    /// `dst = src1 << (src2 & 63)`.
    pub fn shl(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(Op::Shl, dst, src1, src2)
    }

    /// `dst = src1 >> (src2 & 63)` (logical).
    pub fn shr(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(Op::Shr, dst, src1, src2)
    }

    /// `dst = (src1 <s src2) ? 1 : 0`.
    pub fn cmp_lt(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(Op::CmpLt, dst, src1, src2)
    }

    /// `dst = src1 + imm`.
    pub fn add_imm(&mut self, dst: Reg, src1: Reg, imm: i64) -> &mut Self {
        self.emit(StaticInst {
            op: Op::AddImm,
            dst: Some(dst),
            src1: Some(src1),
            src2: None,
            imm,
        })
    }

    /// `dst = src1 * imm`.
    pub fn mul_imm(&mut self, dst: Reg, src1: Reg, imm: i64) -> &mut Self {
        self.emit(StaticInst {
            op: Op::MulImm,
            dst: Some(dst),
            src1: Some(src1),
            src2: None,
            imm,
        })
    }

    /// FP add class: `dst = src1 + src2` with FP-add latency.
    pub fn fadd(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(Op::FAdd, dst, src1, src2)
    }

    /// FP multiply class.
    pub fn fmul(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(Op::FMul, dst, src1, src2)
    }

    /// FP divide class (long latency).
    pub fn fdiv(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.alu(Op::FDiv, dst, src1, src2)
    }

    /// `dst = mem[base + disp]`, zero-extended.
    pub fn load(&mut self, size: DataSize, dst: Reg, base: Reg, disp: i64) -> &mut Self {
        self.emit(StaticInst {
            op: Op::Load(size),
            dst: Some(dst),
            src1: Some(base),
            src2: None,
            imm: disp,
        })
    }

    /// `mem[base + disp] = data`.
    pub fn store(&mut self, size: DataSize, data: Reg, base: Reg, disp: i64) -> &mut Self {
        self.emit(StaticInst {
            op: Op::Store(size),
            dst: None,
            src1: Some(base),
            src2: Some(data),
            imm: disp,
        })
    }

    /// Branch to `target` if `cond == 0`.
    pub fn branch_z(&mut self, cond: Reg, target: Label) -> &mut Self {
        self.emit(StaticInst {
            op: Op::BranchZ,
            dst: None,
            src1: Some(cond),
            src2: None,
            imm: target.0 as i64,
        })
    }

    /// Branch to `target` if `cond != 0`.
    pub fn branch_nz(&mut self, cond: Reg, target: Label) -> &mut Self {
        self.emit(StaticInst {
            op: Op::BranchNZ,
            dst: None,
            src1: Some(cond),
            src2: None,
            imm: target.0 as i64,
        })
    }

    /// Branch to a *named* (possibly not yet placed) label if `cond == 0`.
    pub fn branch_z_to(&mut self, cond: Reg, name: &str) -> &mut Self {
        self.fixups.push((self.insts.len(), name.to_owned()));
        self.emit(StaticInst {
            op: Op::BranchZ,
            dst: None,
            src1: Some(cond),
            src2: None,
            imm: 0,
        })
    }

    /// Branch to a named label if `cond != 0`.
    pub fn branch_nz_to(&mut self, cond: Reg, name: &str) -> &mut Self {
        self.fixups.push((self.insts.len(), name.to_owned()));
        self.emit(StaticInst {
            op: Op::BranchNZ,
            dst: None,
            src1: Some(cond),
            src2: None,
            imm: 0,
        })
    }

    /// Unconditional jump to a named label.
    pub fn jump_to(&mut self, name: &str) -> &mut Self {
        self.fixups.push((self.insts.len(), name.to_owned()));
        self.emit(StaticInst {
            op: Op::Jump,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
        })
    }

    /// Call a named label, writing the return address to `link`.
    pub fn call_to(&mut self, link: Reg, name: &str) -> &mut Self {
        self.fixups.push((self.insts.len(), name.to_owned()));
        self.emit(StaticInst {
            op: Op::Call,
            dst: Some(link),
            src1: None,
            src2: None,
            imm: 0,
        })
    }

    /// Return through `link`.
    pub fn ret(&mut self, link: Reg) -> &mut Self {
        self.emit(StaticInst {
            op: Op::Ret,
            dst: None,
            src1: Some(link),
            src2: None,
            imm: 0,
        })
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(StaticInst::nop())
    }

    /// Halt.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(StaticInst {
            op: Op::Halt,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
        })
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::EmptyProgram`], [`IsaError::DuplicateLabel`], or
    /// [`IsaError::UnresolvedLabel`] when the assembly is malformed.
    pub fn build(mut self) -> Result<Program, IsaError> {
        if self.insts.is_empty() {
            return Err(IsaError::EmptyProgram);
        }
        if let Some(name) = self.duplicate.take() {
            return Err(IsaError::DuplicateLabel { name });
        }
        for (idx, name) in std::mem::take(&mut self.fixups) {
            let target = *self
                .labels
                .get(&name)
                .ok_or(IsaError::UnresolvedLabel { name: name.clone() })?;
            self.insts[idx].imm = target as i64;
        }
        Ok(Program { insts: self.insts })
    }

    fn alu(&mut self, op: Op, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.emit(StaticInst {
            op,
            dst: Some(dst),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_label_resolution() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(1);
        b.load_imm(r, 2);
        let top = b.label("top");
        b.add_imm(r, r, -1);
        b.branch_nz(r, top);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.fetch(Pc::from_index(2)).unwrap().imm, 1);
    }

    #[test]
    fn forward_label_resolution() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(1);
        b.load_imm(r, 0);
        b.branch_z_to(r, "exit");
        b.nop();
        b.place("exit");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.fetch(Pc::from_index(1)).unwrap().imm, 3);
    }

    #[test]
    fn unresolved_label_errors() {
        let mut b = ProgramBuilder::new();
        b.jump_to("nowhere");
        assert_eq!(
            b.build().unwrap_err(),
            IsaError::UnresolvedLabel {
                name: "nowhere".into()
            }
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.label("x");
        b.nop();
        b.label("x");
        b.halt();
        assert_eq!(
            b.build().unwrap_err(),
            IsaError::DuplicateLabel { name: "x".into() }
        );
    }

    #[test]
    fn empty_program_errors() {
        assert_eq!(
            ProgramBuilder::new().build().unwrap_err(),
            IsaError::EmptyProgram
        );
    }

    #[test]
    fn iter_yields_sequential_pcs() {
        let mut b = ProgramBuilder::new();
        b.nop().nop().halt();
        let p = b.build().unwrap();
        let pcs: Vec<usize> = p.iter().map(|(pc, _)| pc.index()).collect();
        assert_eq!(pcs, vec![0, 1, 2]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }
}
