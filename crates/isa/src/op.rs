//! Operations and their functional semantics.

use sqip_types::DataSize;

/// A micro-ISA operation.
///
/// Memory operations compute their effective address as `src1 + imm`;
/// stores take their data from `src2`. Branch/jump targets are instruction
/// *indices* held in `imm` (resolved from labels by the builder); `Ret`
/// jumps to the address in `src1`, and `Call` writes the return address to
/// its destination register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `dst = src1 + src2` (wrapping).
    Add,
    /// `dst = src1 - src2` (wrapping).
    Sub,
    /// `dst = src1 * src2` (wrapping); issued to the integer multiplier.
    Mul,
    /// `dst = src1 & src2`.
    And,
    /// `dst = src1 | src2`.
    Or,
    /// `dst = src1 ^ src2`.
    Xor,
    /// `dst = src1 << (src2 & 63)`.
    Shl,
    /// `dst = src1 >> (src2 & 63)` (logical).
    Shr,
    /// `dst = (src1 <s src2) ? 1 : 0` (signed compare).
    CmpLt,
    /// `dst = (src1 == src2) ? 1 : 0`.
    CmpEq,
    /// `dst = src1 + imm` (wrapping).
    AddImm,
    /// `dst = src1 * imm` (wrapping); integer multiplier.
    MulImm,
    /// `dst = imm` (sign-extended immediate materialisation).
    LoadImm,
    /// Floating-point add class (modelled on 64-bit integers; the predictors
    /// never look at FP values, only at latencies and dependences).
    FAdd,
    /// Floating-point multiply class.
    FMul,
    /// Floating-point divide class (long latency, unpipelined).
    FDiv,
    /// `dst = zero_extend(mem[src1 + imm])` of the given width.
    Load(DataSize),
    /// `mem[src1 + imm] = truncate(src2)` of the given width.
    Store(DataSize),
    /// Branch to instruction index `imm` if `src1 == 0`.
    BranchZ,
    /// Branch to instruction index `imm` if `src1 != 0`.
    BranchNZ,
    /// Unconditional jump to instruction index `imm`.
    Jump,
    /// Call: `dst = return PC`, jump to instruction index `imm`.
    Call,
    /// Return: jump to the byte address in `src1`.
    Ret,
    /// No operation.
    Nop,
    /// Stop the program.
    Halt,
}

/// Functional-unit class of an operation, used by the issue logic
/// (the paper's issue mix: 6 int, 4 FP, 1 branch, 2 store, 2 load).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer ALU (1 cycle).
    IntAlu,
    /// Integer multiply (3 cycles).
    IntMul,
    /// FP add/sub (4 cycles).
    FpAdd,
    /// FP multiply (4 cycles).
    FpMul,
    /// FP divide (12 cycles).
    FpDiv,
    /// Load port.
    Load,
    /// Store port.
    Store,
    /// Branch unit.
    Branch,
    /// Consumes no functional unit (nop/halt).
    None,
}

impl Op {
    /// The functional-unit class this operation issues to.
    #[must_use]
    pub fn class(self) -> OpClass {
        match self {
            Op::Add
            | Op::Sub
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Shl
            | Op::Shr
            | Op::CmpLt
            | Op::CmpEq
            | Op::AddImm
            | Op::LoadImm => OpClass::IntAlu,
            Op::Mul | Op::MulImm => OpClass::IntMul,
            Op::FAdd => OpClass::FpAdd,
            Op::FMul => OpClass::FpMul,
            Op::FDiv => OpClass::FpDiv,
            Op::Load(_) => OpClass::Load,
            Op::Store(_) => OpClass::Store,
            Op::BranchZ | Op::BranchNZ | Op::Jump | Op::Call | Op::Ret => OpClass::Branch,
            Op::Nop | Op::Halt => OpClass::None,
        }
    }

    /// Whether this is a load.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, Op::Load(_))
    }

    /// Whether this is a store.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Op::Store(_))
    }

    /// Whether this is any control transfer.
    #[must_use]
    pub fn is_branch(self) -> bool {
        self.class() == OpClass::Branch
    }

    /// Whether this is a *conditional* branch (the only ops the direction
    /// predictor handles; jumps/calls/returns are always taken).
    #[must_use]
    pub fn is_conditional(self) -> bool {
        matches!(self, Op::BranchZ | Op::BranchNZ)
    }

    /// Access width for memory operations.
    #[must_use]
    pub fn mem_size(self) -> Option<DataSize> {
        match self {
            Op::Load(s) | Op::Store(s) => Some(s),
            _ => None,
        }
    }

    /// Evaluates the *value-producing* semantics of a non-memory,
    /// non-control operation.
    ///
    /// This is the function the timing simulator uses to recompute results
    /// from speculative operand values, so a mis-forwarded load's poison
    /// spreads exactly as far as real dataflow would carry it.
    ///
    /// Memory and control ops return 0 here; their results come from the
    /// memory system / next-PC logic instead.
    #[must_use]
    pub fn eval(self, src1: u64, src2: u64, imm: i64) -> u64 {
        match self {
            Op::Add => src1.wrapping_add(src2),
            Op::Sub => src1.wrapping_sub(src2),
            Op::Mul => src1.wrapping_mul(src2),
            Op::And => src1 & src2,
            Op::Or => src1 | src2,
            Op::Xor => src1 ^ src2,
            Op::Shl => src1 << (src2 & 63),
            Op::Shr => src1 >> (src2 & 63),
            Op::CmpLt => u64::from((src1 as i64) < (src2 as i64)),
            Op::CmpEq => u64::from(src1 == src2),
            Op::AddImm => src1.wrapping_add(imm as u64),
            Op::MulImm => src1.wrapping_mul(imm as u64),
            Op::LoadImm => imm as u64,
            // FP classes reuse integer semantics on the bit patterns; only
            // their latency class differs, which is all the study needs.
            Op::FAdd => src1.wrapping_add(src2),
            Op::FMul => src1.wrapping_mul(src2).rotate_left(1),
            Op::FDiv => src1 / src2.max(1),
            Op::Load(_) | Op::Store(_) => 0,
            Op::BranchZ | Op::BranchNZ | Op::Jump | Op::Call | Op::Ret | Op::Nop | Op::Halt => 0,
        }
    }

    /// Evaluates the branch direction for conditional branches.
    #[must_use]
    pub fn branch_taken(self, src1: u64) -> bool {
        match self {
            Op::BranchZ => src1 == 0,
            Op::BranchNZ => src1 != 0,
            Op::Jump | Op::Call | Op::Ret => true,
            _ => false,
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Load(s) => write!(f, "ld{s}"),
            Op::Store(s) => write!(f, "st{s}"),
            other => write!(f, "{}", format!("{other:?}").to_lowercase()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_issue_mix() {
        assert_eq!(Op::Add.class(), OpClass::IntAlu);
        assert_eq!(Op::Mul.class(), OpClass::IntMul);
        assert_eq!(Op::FDiv.class(), OpClass::FpDiv);
        assert_eq!(Op::Load(DataSize::Word).class(), OpClass::Load);
        assert_eq!(Op::Store(DataSize::Byte).class(), OpClass::Store);
        assert_eq!(Op::Ret.class(), OpClass::Branch);
        assert_eq!(Op::Halt.class(), OpClass::None);
    }

    #[test]
    fn predicates() {
        assert!(Op::Load(DataSize::Quad).is_load());
        assert!(!Op::Load(DataSize::Quad).is_store());
        assert!(Op::Store(DataSize::Half).is_store());
        assert!(Op::BranchZ.is_conditional());
        assert!(Op::Jump.is_branch() && !Op::Jump.is_conditional());
        assert_eq!(Op::Load(DataSize::Half).mem_size(), Some(DataSize::Half));
        assert_eq!(Op::Add.mem_size(), None);
    }

    #[test]
    fn eval_integer_semantics() {
        assert_eq!(Op::Add.eval(3, 4, 0), 7);
        assert_eq!(Op::Sub.eval(3, 4, 0), u64::MAX);
        assert_eq!(Op::CmpLt.eval(u64::MAX, 0, 0), 1, "signed: -1 < 0");
        assert_eq!(Op::CmpLt.eval(1, 0, 0), 0);
        assert_eq!(Op::CmpEq.eval(5, 5, 0), 1);
        assert_eq!(Op::AddImm.eval(10, 0, -3), 7);
        assert_eq!(Op::LoadImm.eval(0, 0, -1), u64::MAX);
        assert_eq!(Op::Shl.eval(1, 65, 0), 2, "shift amount masked to 6 bits");
    }

    #[test]
    fn eval_fdiv_never_panics() {
        assert_eq!(Op::FDiv.eval(10, 0, 0), 10, "divide by zero is guarded");
    }

    #[test]
    fn branch_direction() {
        assert!(Op::BranchZ.branch_taken(0));
        assert!(!Op::BranchZ.branch_taken(1));
        assert!(Op::BranchNZ.branch_taken(1));
        assert!(Op::Jump.branch_taken(123));
        assert!(!Op::Add.branch_taken(0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Op::Load(DataSize::Quad).to_string(), "ld8B");
        assert_eq!(Op::Add.to_string(), "add");
    }
}
