//! Golden dynamic traces: the architecturally correct execution that the
//! cycle-level simulator replays.

use sqip_types::{Addr, DataSize, Pc, Seq};

use crate::error::IsaError;
use crate::exec::ArchState;
use crate::inst::StaticInst;
use crate::op::Op;
use crate::program::Program;
use crate::reg::Reg;

/// Maximum source operands one instruction can carry.
///
/// Every fixed per-instruction operand buffer in the simulator — the
/// record's `srcs`, the in-flight operand array, the scheduler's replay
/// wake buffer — is sized by this bound, so an ISA extension past two
/// sources is a change *here* that the type system then carries through
/// each of them (instead of a panic in the issue hot loop).
pub const MAX_SRCS: usize = 2;

/// One dynamic instruction of the golden execution.
///
/// `addr` and `result` are *architectural* (correct) values. The timing
/// simulator uses `addr` for cache/SQ indexing (oracle-address
/// simplification, see DESIGN.md §3) but recomputes each instruction's
/// *speculative* value from its producers, comparing against `result` only
/// where the real machine would: at pre-commit re-execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Fetch-order sequence number (position in the trace).
    pub seq: Seq,
    /// Static PC.
    pub pc: Pc,
    /// The operation.
    pub op: Op,
    /// Destination register (zero register filtered out).
    pub dst: Option<Reg>,
    /// Source registers (zero register filtered out).
    pub srcs: [Option<Reg>; MAX_SRCS],
    /// The instruction's immediate.
    pub imm: i64,
    /// Effective address for loads/stores.
    pub addr: Option<Addr>,
    /// Access width for loads/stores (Quad otherwise; never read).
    pub size: DataSize,
    /// Golden result: load value, ALU result, call link, or store *data*.
    pub result: u64,
    /// Whether a control transfer was taken.
    pub taken: bool,
    /// Architectural next PC.
    pub next_pc: Pc,
}

impl Default for TraceRecord {
    /// A neutral filler record (a no-op `Add` with no operands), used to
    /// pre-size fixed record rings before any real record arrives.
    fn default() -> TraceRecord {
        TraceRecord {
            seq: Seq(0),
            pc: Pc::new(0),
            op: Op::Add,
            dst: None,
            srcs: [None, None],
            imm: 0,
            addr: None,
            size: DataSize::Quad,
            result: 0,
            taken: false,
            next_pc: Pc::new(0),
        }
    }
}

impl TraceRecord {
    /// Whether this record is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.op.is_load()
    }

    /// Whether this record is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        self.op.is_store()
    }

    /// Effective address, for memory operations.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-memory instruction.
    #[must_use]
    pub fn mem_addr(&self) -> Addr {
        self.addr
            .expect("mem_addr called on a non-memory instruction")
    }
}

/// A complete golden execution of a program.
#[derive(Debug, Clone)]
pub struct Trace {
    records: Vec<TraceRecord>,
    dynamic_loads: u64,
    dynamic_stores: u64,
}

impl Trace {
    /// The dynamic instruction stream, in fetch order.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// A [`crate::TraceSource`] replaying this trace from the beginning.
    #[must_use]
    pub fn stream(&self) -> crate::TraceCursor<'_> {
        crate::TraceCursor::new(self)
    }

    /// Number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of dynamic loads.
    #[must_use]
    pub fn dynamic_loads(&self) -> u64 {
        self.dynamic_loads
    }

    /// Number of dynamic stores.
    #[must_use]
    pub fn dynamic_stores(&self) -> u64 {
        self.dynamic_stores
    }

    /// The architectural (oracle) forwarding rate: fraction of dynamic
    /// loads whose value was produced by one of the previous `window`
    /// dynamic stores (i.e. could forward from a `window`-entry SQ in the
    /// best case). This is the quantity in the first column of the paper's
    /// Table 3, measured structurally on the trace.
    #[must_use]
    pub fn oracle_forwarding_rate(&self, window: usize) -> f64 {
        if self.dynamic_loads == 0 {
            return 0.0;
        }
        // Byte-granular map from address to the index (in dynamic stores) of
        // the last store writing it.
        let mut last_store: std::collections::BTreeMap<u64, u64> =
            std::collections::BTreeMap::new();
        let mut store_count: u64 = 0;
        let mut forwarding_loads: u64 = 0;
        for r in &self.records {
            if r.is_store() {
                store_count += 1;
                for b in r.mem_addr().span(r.size).byte_addrs() {
                    last_store.insert(b.0, store_count);
                }
            } else if r.is_load() {
                let newest = r
                    .mem_addr()
                    .span(r.size)
                    .byte_addrs()
                    .filter_map(|b| last_store.get(&b.0).copied())
                    .max();
                if let Some(idx) = newest {
                    if store_count - idx < window as u64 {
                        forwarding_loads += 1;
                    }
                }
            }
        }
        forwarding_loads as f64 / self.dynamic_loads as f64
    }
}

/// Functionally executes `program` from a fresh [`ArchState`] and returns
/// its golden trace.
///
/// # Errors
///
/// Propagates executor errors, and returns
/// [`IsaError::InstructionBudgetExceeded`] if the program does not halt
/// within `max_insts` dynamic instructions.
pub fn trace_program(program: &Program, max_insts: u64) -> Result<Trace, IsaError> {
    let mut state = ArchState::new();
    trace_program_with_state(program, &mut state, max_insts)
}

/// Like [`trace_program`] but starting from caller-provided state (e.g.
/// with a pre-initialised data section).
///
/// # Errors
///
/// Same as [`trace_program`].
pub fn trace_program_with_state(
    program: &Program,
    state: &mut ArchState,
    max_insts: u64,
) -> Result<Trace, IsaError> {
    let mut records = Vec::new();
    let mut loads = 0u64;
    let mut stores = 0u64;

    for n in 0..max_insts {
        let Some(rec) = step_record(program, state, n)? else {
            break;
        };
        loads += u64::from(rec.is_load());
        stores += u64::from(rec.is_store());
        records.push(rec);
    }

    if !state.is_halted() {
        return Err(IsaError::InstructionBudgetExceeded { budget: max_insts });
    }

    Ok(Trace {
        records,
        dynamic_loads: loads,
        dynamic_stores: stores,
    })
}

/// Functionally executes one instruction and describes it as a
/// [`TraceRecord`] with sequence number `seq`, or `None` if the program
/// has halted. Shared by the materializing tracer above and the streaming
/// [`crate::ProgramSource`].
pub(crate) fn step_record(
    program: &Program,
    state: &mut ArchState,
    seq: u64,
) -> Result<Option<TraceRecord>, IsaError> {
    if state.is_halted() {
        return Ok(None);
    }
    let pc = state.pc();
    let inst: StaticInst = *program
        .fetch(pc)
        .ok_or(IsaError::PcOutOfRange { index: pc.index() })?;
    let out = state.step(program)?;
    Ok(Some(TraceRecord {
        seq: Seq(seq),
        pc,
        op: inst.op,
        dst: inst.dest(),
        srcs: inst.sources(),
        imm: inst.imm,
        addr: out.addr,
        size: inst.mem_size().unwrap_or_default(),
        result: out.result,
        taken: out.taken,
        next_pc: out.next_pc,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn forwarding_program() -> Program {
        // st A; ld A — a guaranteed forwarding pair, repeated 4 times.
        let mut b = ProgramBuilder::new();
        let (ctr, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.load_imm(ctr, 4);
        b.load_imm(v, 0x55);
        let top = b.label("top");
        b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
        b.load(DataSize::Quad, t, Reg::ZERO, 0x100);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn trace_counts_memory_ops() {
        let t = trace_program(&forwarding_program(), 1000).unwrap();
        assert_eq!(t.dynamic_loads(), 4);
        assert_eq!(t.dynamic_stores(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.len() as u64, 2 + 4 * 4 + 1);
    }

    #[test]
    fn records_are_sequenced_and_architectural() {
        let t = trace_program(&forwarding_program(), 1000).unwrap();
        for (i, r) in t.records().iter().enumerate() {
            assert_eq!(r.seq, Seq(i as u64));
        }
        let loads: Vec<_> = t.records().iter().filter(|r| r.is_load()).collect();
        assert!(
            loads.iter().all(|r| r.result == 0x55),
            "loads see stored value"
        );
        assert!(loads.iter().all(|r| r.mem_addr() == Addr::new(0x100)));
    }

    #[test]
    fn oracle_forwarding_rate_sees_adjacent_pairs() {
        let t = trace_program(&forwarding_program(), 1000).unwrap();
        assert!(
            (t.oracle_forwarding_rate(64) - 1.0).abs() < 1e-12,
            "every load forwards"
        );
        // With a 0-entry window nothing can forward... window=1 still works
        // because the store is the immediately preceding one.
        assert!((t.oracle_forwarding_rate(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_exceeded_is_an_error() {
        let mut b = ProgramBuilder::new();
        let top = b.label("spin");
        b.jump_to("spin");
        let _ = top;
        let p = b.build().unwrap();
        assert_eq!(
            trace_program(&p, 10).unwrap_err(),
            IsaError::InstructionBudgetExceeded { budget: 10 }
        );
    }

    #[test]
    fn taken_and_next_pc_follow_control_flow() {
        let t = trace_program(&forwarding_program(), 1000).unwrap();
        let branches: Vec<_> = t.records().iter().filter(|r| r.op.is_branch()).collect();
        assert_eq!(branches.len(), 4);
        assert!(branches[..3].iter().all(|r| r.taken));
        assert!(!branches[3].taken, "final iteration falls through");
        assert_eq!(branches[0].next_pc, Pc::from_index(2));
    }
}
