//! [`TraceTee`]: fan one record stream out to many consumers, pulling the
//! upstream source **exactly once**.
//!
//! A design-space sweep runs the same workload under many configurations;
//! re-running the generator/interpreter (and re-decoding a trace file) per
//! cell pays the workload axis once per design. The tee pulls each record
//! from the upstream [`TraceSource`] a single time into a bounded shared
//! ring of reference-counted slots, and hands out per-consumer
//! [`TeeCursor`]s that replay the ring independently. A slot is released
//! when every live cursor has consumed it, so memory stays bounded by the
//! ring capacity — the price is **backpressure**: a cursor that runs more
//! than a ring's worth of records ahead of the slowest consumer is asked
//! to wait (see [`TeePoll::Blocked`]).
//!
//! The tee is single-threaded by design (`Rc`-shared, not `Arc`): a sweep
//! engine drives one workload group's consumers in lock-step on one worker
//! thread, which is also what makes a bounded ring viable at all — the
//! scheduler simply refrains from stepping consumers that are about to
//! outrun the window.

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::IsaError;
use crate::source::TraceSource;
use crate::trace::TraceRecord;
use sqip_types::Seq;

/// Outcome of a non-blocking cursor poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeePoll {
    /// The next record, delivered exactly once to this cursor.
    Record(TraceRecord),
    /// Delivering the next record would need a new ring slot, but the ring
    /// is full because the slowest consumer has not released its tail —
    /// back off and let the laggard run.
    Blocked,
    /// The upstream stream is exhausted and this cursor has consumed
    /// every record.
    End,
}

/// Outcome of a non-blocking **block** poll ([`TeeCursor::poll_block`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeeBlockPoll {
    /// `out[..n]` holds the next `n` records (`n > 0`), delivered exactly
    /// once to this cursor.
    Records(usize),
    /// As [`TeePoll::Blocked`]: no buffered record for this cursor and no
    /// free ring slot to pull one into.
    Blocked,
    /// As [`TeePoll::End`].
    End,
}

struct TeeState<'s> {
    source: Box<dyn TraceSource + 's>,
    len_hint: Option<u64>,
    /// Power-of-two ring of records, keyed by `seq & mask`.
    recs: Vec<TraceRecord>,
    /// Per-slot reference count: live cursors that have not consumed it.
    refs: Vec<u32>,
    mask: u64,
    /// Sequence number of the oldest slot still held (all older slots have
    /// been consumed by every cursor).
    base: u64,
    /// Records pulled from upstream so far (== next sequence number).
    pulled: u64,
    /// Per-cursor next sequence number to deliver.
    positions: Vec<u64>,
    /// Per-cursor liveness (dropped cursors release their share).
    alive: Vec<bool>,
    /// Live cursor count (the refcount given to a freshly pulled slot).
    active: u32,
    /// Largest ring occupancy ever reached.
    high_water: usize,
    done: bool,
    error: Option<IsaError>,
}

impl TeeState<'_> {
    fn release(&mut self, slot: usize) {
        debug_assert!(self.refs[slot] > 0, "slot released more times than held");
        self.refs[slot] -= 1;
        // Advance the base past fully released slots (out-of-order
        // releases leave holes that close as the tail catches up).
        while self.base < self.pulled && self.refs[(self.base & self.mask) as usize] == 0 {
            self.base += 1;
        }
    }

    fn poll(&mut self, id: usize) -> Result<TeePoll, IsaError> {
        let pos = self.positions[id];
        debug_assert!(self.alive[id], "polling a dropped cursor");
        if pos == self.pulled {
            if let Some(e) = &self.error {
                return Err(e.clone());
            }
            if self.done {
                return Ok(TeePoll::End);
            }
            if (self.pulled - self.base) as usize > self.mask as usize {
                return Ok(TeePoll::Blocked);
            }
            match self.source.next_record() {
                Ok(Some(mut rec)) => {
                    // The tee owns the numbering: records are sequential in
                    // pull order, whatever the upstream put in `seq` (the
                    // same renumbering every consumer would apply itself).
                    rec.seq = Seq(self.pulled);
                    let slot = (self.pulled & self.mask) as usize;
                    self.recs[slot] = rec;
                    self.refs[slot] = self.active;
                    self.pulled += 1;
                    self.high_water = self.high_water.max((self.pulled - self.base) as usize);
                }
                Ok(None) => {
                    self.done = true;
                    return Ok(TeePoll::End);
                }
                Err(e) => {
                    self.error = Some(e.clone());
                    return Err(e);
                }
            }
        }
        let slot = (pos & self.mask) as usize;
        let rec = self.recs[slot];
        self.positions[id] = pos + 1;
        self.release(slot);
        Ok(TeePoll::Record(rec))
    }

    /// Block variant of [`TeeState::poll`]: delivers up to `out.len()`
    /// records in one call, topping the ring up from upstream in
    /// contiguous spans first. Observable behaviour (delivery order,
    /// error positions, backpressure) is identical to looping `poll`.
    fn poll_block(&mut self, id: usize, out: &mut [TraceRecord]) -> Result<TeeBlockPoll, IsaError> {
        debug_assert!(self.alive[id], "polling a dropped cursor");
        if out.is_empty() {
            return Ok(TeeBlockPoll::Records(0));
        }
        let pos = self.positions[id];
        let mut avail = (self.pulled - pos) as usize;
        if avail < out.len() && !self.done && self.error.is_none() {
            let cap = self.mask as usize + 1;
            let free = cap - (self.pulled - self.base) as usize;
            if free > 0 {
                self.pull_upstream((out.len() - avail).min(free));
                avail = (self.pulled - pos) as usize;
            }
        }
        if avail == 0 {
            // Same precedence as the scalar path: a stored upstream error
            // replays immediately at the frontier — before backpressure —
            // so a blocked-looking cursor is never starved behind a
            // failure that no amount of draining will clear.
            if let Some(e) = &self.error {
                return Err(e.clone());
            }
            if self.done {
                return Ok(TeeBlockPoll::End);
            }
            return Ok(TeeBlockPoll::Blocked);
        }
        let n = avail.min(out.len());
        let cap = self.mask as usize + 1;
        let start = (pos & self.mask) as usize;
        let first = n.min(cap - start);
        out[..first].copy_from_slice(&self.recs[start..start + first]);
        if n > first {
            out[first..n].copy_from_slice(&self.recs[..n - first]);
        }
        self.positions[id] = pos + n as u64;
        self.release_span(pos, n);
        Ok(TeeBlockPoll::Records(n))
    }

    /// Pulls up to `want` records from upstream into the ring's free
    /// span(s), renumbering and reference-counting each. Stops early at
    /// end-of-stream or on an upstream error (stored for replay).
    fn pull_upstream(&mut self, want: usize) {
        let cap = self.mask as usize + 1;
        let mut remaining = want;
        while remaining > 0 && !self.done && self.error.is_none() {
            let start = (self.pulled & self.mask) as usize;
            let span = remaining.min(cap - start);
            let dst = &mut self.recs[start..start + span];
            match self.source.next_block(dst) {
                Ok(0) => self.done = true,
                Ok(n) => {
                    for (i, rec) in dst[..n].iter_mut().enumerate() {
                        rec.seq = Seq(self.pulled + i as u64);
                    }
                    self.refs[start..start + n].fill(self.active);
                    self.pulled += n as u64;
                    remaining -= n;
                    // A short block means the source ended *or* holds a
                    // sticky error; one scalar pull tells us which, so the
                    // outcome is recorded at the exact failure position.
                    if n < span {
                        match self.source.next_record() {
                            Ok(Some(mut rec)) => {
                                // A conforming source never does this, but
                                // tolerate it: keep the record.
                                rec.seq = Seq(self.pulled);
                                let slot = (self.pulled & self.mask) as usize;
                                self.recs[slot] = rec;
                                self.refs[slot] = self.active;
                                self.pulled += 1;
                                remaining = remaining.saturating_sub(1);
                            }
                            Ok(None) => self.done = true,
                            Err(e) => self.error = Some(e),
                        }
                    }
                }
                Err(e) => self.error = Some(e),
            }
        }
        self.high_water = self.high_water.max((self.pulled - self.base) as usize);
    }

    /// Releases `n` consecutive slots starting at sequence `from`,
    /// advancing the base once at the end (batched [`TeeState::release`]).
    fn release_span(&mut self, from: u64, n: usize) {
        for seq in from..from + n as u64 {
            let slot = (seq & self.mask) as usize;
            debug_assert!(self.refs[slot] > 0, "slot released more times than held");
            self.refs[slot] -= 1;
        }
        while self.base < self.pulled && self.refs[(self.base & self.mask) as usize] == 0 {
            self.base += 1;
        }
    }

    fn detach(&mut self, id: usize) {
        if !self.alive[id] {
            return;
        }
        self.alive[id] = false;
        self.active -= 1;
        // Release this cursor's hold on every slot it had not yet
        // consumed, so the ring no longer waits for it.
        for seq in self.positions[id]..self.pulled {
            self.release((seq & self.mask) as usize);
        }
        self.positions[id] = self.pulled;
    }
}

/// The shared side of a record-stream tee: pulls the upstream source
/// exactly once and fans the records out to the [`TeeCursor`]s minted at
/// construction (see the module-level documentation for the design).
///
/// The handle left with the caller observes progress — ring occupancy,
/// per-cursor positions, the high-water mark — which is exactly what a
/// lock-step scheduler needs to decide which consumer to run next.
///
/// # Example
///
/// Two cursors replay one upstream stream; the source is pulled once:
///
/// ```
/// use sqip_isa::{ProgramBuilder, ProgramSource, Reg, TraceSource, TraceTee};
///
/// let mut b = ProgramBuilder::new();
/// b.load_imm(Reg::new(1), 3);
/// let top = b.label("top");
/// b.add_imm(Reg::new(1), Reg::new(1), -1);
/// b.branch_nz(Reg::new(1), top);
/// b.halt();
/// let program = b.build()?;
///
/// let (tee, cursors) = TraceTee::new(ProgramSource::new(program, 1000), 2, 64);
/// let [mut a, mut b] = <[_; 2]>::try_from(cursors).ok().unwrap();
/// let first = a.next_record()?;
/// assert_eq!(b.next_record()?, first, "both cursors see the same stream");
/// while a.next_record()?.is_some() {}
/// while b.next_record()?.is_some() {}
/// assert_eq!(tee.pulled(), 8, "upstream was pulled exactly once");
/// # Ok::<(), sqip_isa::IsaError>(())
/// ```
pub struct TraceTee<'s> {
    shared: Rc<RefCell<TeeState<'s>>>,
}

impl<'s> TraceTee<'s> {
    /// Tees `source` out to `consumers` cursors over a shared ring of at
    /// least `capacity` records (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `consumers` is zero.
    #[must_use]
    pub fn new(
        source: impl TraceSource + 's,
        consumers: usize,
        capacity: usize,
    ) -> (TraceTee<'s>, Vec<TeeCursor<'s>>) {
        assert!(consumers > 0, "a tee needs at least one consumer");
        let cap = capacity.max(1).next_power_of_two();
        let len_hint = source.len_hint();
        let shared = Rc::new(RefCell::new(TeeState {
            source: Box::new(source),
            len_hint,
            recs: vec![TraceRecord::default(); cap],
            refs: vec![0; cap],
            mask: cap as u64 - 1,
            base: 0,
            pulled: 0,
            positions: vec![0; consumers],
            alive: vec![true; consumers],
            active: consumers as u32,
            high_water: 0,
            done: false,
            error: None,
        }));
        let cursors = (0..consumers)
            .map(|id| TeeCursor {
                shared: Rc::clone(&shared),
                id,
            })
            .collect();
        (TraceTee { shared }, cursors)
    }

    /// Records pulled from the upstream source so far.
    #[must_use]
    pub fn pulled(&self) -> u64 {
        self.shared.borrow().pulled
    }

    /// Sequence number of the oldest record still held in the ring (the
    /// slowest live consumer's progress).
    #[must_use]
    pub fn base(&self) -> u64 {
        self.shared.borrow().base
    }

    /// The ring capacity (after power-of-two rounding).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.borrow().mask as usize + 1
    }

    /// The next sequence number cursor `id` will consume — its lag behind
    /// the pull frontier is `pulled() - position(id)`.
    #[must_use]
    pub fn position(&self, id: usize) -> u64 {
        self.shared.borrow().positions[id]
    }

    /// The largest ring occupancy ever reached — the shared-pass memory
    /// observable a sweep report pairs with each consumer's own
    /// buffered-record peak.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.shared.borrow().high_water
    }

    /// Whether the upstream source is exhausted.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.shared.borrow().done
    }

    /// Whether the upstream source has failed. The stored error replays
    /// for every cursor at the recorded position — a scheduler should
    /// treat a failed tee like a finished one and keep driving cursors
    /// (ignoring ring backpressure at the frontier) so each observes the
    /// error immediately rather than after the ring drains.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        self.shared.borrow().error.is_some()
    }
}

impl std::fmt::Debug for TraceTee<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.shared.borrow();
        f.debug_struct("TraceTee")
            .field("pulled", &s.pulled)
            .field("base", &s.base)
            .field("capacity", &(s.mask + 1))
            .field("active", &s.active)
            .field("done", &s.done)
            .finish()
    }
}

/// One consumer's view of a [`TraceTee`]: a [`TraceSource`] yielding the
/// shared stream exactly once to this cursor, plus the non-blocking
/// [`TeeCursor::poll_record`] a scheduler uses directly.
///
/// Dropping a cursor releases its hold on the ring, so remaining
/// consumers are never throttled by a finished (or failed) one.
pub struct TeeCursor<'s> {
    shared: Rc<RefCell<TeeState<'s>>>,
    id: usize,
}

impl TeeCursor<'_> {
    /// Non-blocking pull: the next record, [`TeePoll::Blocked`] if the
    /// ring cannot hold it yet, or [`TeePoll::End`] after the last record.
    ///
    /// # Errors
    ///
    /// The upstream source's error, once this cursor reaches the position
    /// where it occurred (every cursor observes the same failure point).
    pub fn poll_record(&mut self) -> Result<TeePoll, IsaError> {
        self.shared.borrow_mut().poll(self.id)
    }

    /// Non-blocking block pull: up to `out.len()` records in one call —
    /// one `RefCell` borrow and one upstream (block) pull amortised over
    /// the whole span. Delivery order, error positions and backpressure
    /// are bit-identical to looping [`TeeCursor::poll_record`].
    ///
    /// # Errors
    ///
    /// The upstream source's error, once this cursor reaches the position
    /// where it occurred (every cursor observes the same failure point).
    pub fn poll_block(&mut self, out: &mut [TraceRecord]) -> Result<TeeBlockPoll, IsaError> {
        self.shared.borrow_mut().poll_block(self.id, out)
    }

    /// The next sequence number this cursor will consume.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.shared.borrow().positions[self.id]
    }

    /// Records this cursor can consume before it would block, assuming no
    /// other cursor progresses: the buffered backlog plus the free ring
    /// slots a new upstream pull could fill.
    #[must_use]
    pub fn budget(&self) -> usize {
        let s = self.shared.borrow();
        let cap = s.mask as usize + 1;
        (s.base as usize + cap).saturating_sub(s.positions[self.id] as usize)
    }

    /// This cursor's index among the tee's consumers.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }
}

impl TraceSource for TeeCursor<'_> {
    /// Like [`TeeCursor::poll_record`], with [`TeePoll::Blocked`] mapped
    /// to [`IsaError::TraceIo`].
    ///
    /// Unlike a conforming source's sticky errors, the blocked condition
    /// clears once the slowest consumer advances; a scheduler that checks
    /// [`TeeCursor::budget`] before driving a consumer never observes it.
    fn next_record(&mut self) -> Result<Option<TraceRecord>, IsaError> {
        match self.poll_record()? {
            TeePoll::Record(rec) => Ok(Some(rec)),
            TeePoll::End => Ok(None),
            TeePoll::Blocked => Err(IsaError::TraceIo {
                detail: format!(
                    "tee cursor {} outran the shared ring (capacity {}); \
                     the scheduler must respect cursor budgets",
                    self.id,
                    self.shared.borrow().mask + 1
                ),
            }),
        }
    }

    /// Like [`TeeCursor::poll_block`], with `TeeBlockPoll::Blocked`
    /// mapped to [`IsaError::TraceIo`] (see
    /// [`next_record`](TeeCursor::next_record) for why a well-scheduled
    /// cursor never observes it).
    fn next_block(&mut self, out: &mut [TraceRecord]) -> Result<usize, IsaError> {
        match self.poll_block(out)? {
            TeeBlockPoll::Records(n) => Ok(n),
            TeeBlockPoll::End => Ok(0),
            TeeBlockPoll::Blocked => Err(IsaError::TraceIo {
                detail: format!(
                    "tee cursor {} outran the shared ring (capacity {}); \
                     the scheduler must respect cursor budgets",
                    self.id,
                    self.shared.borrow().mask + 1
                ),
            }),
        }
    }

    fn len_hint(&self) -> Option<u64> {
        self.shared.borrow().len_hint
    }
}

impl Drop for TeeCursor<'_> {
    fn drop(&mut self) {
        self.shared.borrow_mut().detach(self.id);
    }
}

impl std::fmt::Debug for TeeCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeCursor")
            .field("id", &self.id)
            .field("position", &self.position())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::reg::Reg;
    use crate::source::ProgramSource;
    use crate::trace::trace_program;
    use sqip_types::DataSize;

    fn looping_program(iters: i64) -> crate::program::Program {
        let mut b = ProgramBuilder::new();
        let (ctr, v) = (Reg::new(1), Reg::new(2));
        b.load_imm(ctr, iters);
        let top = b.label("top");
        b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
        b.load(DataSize::Quad, v, Reg::ZERO, 0x100);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn every_cursor_sees_the_whole_stream_with_one_upstream_pass() {
        let golden = trace_program(&looping_program(20), 10_000).unwrap();
        let (tee, cursors) = TraceTee::new(ProgramSource::new(looping_program(20), 10_000), 3, 16);
        // Interleave the cursors unevenly but within the ring window.
        let mut streams: Vec<Vec<TraceRecord>> = vec![Vec::new(); 3];
        let mut cursors = cursors;
        let mut open = 3;
        while open > 0 {
            open = 0;
            for (i, c) in cursors.iter_mut().enumerate() {
                // Cursor 0 takes 3 records per round, 1 takes 2, 2 takes 1.
                for _ in 0..(3 - i) {
                    match c.poll_record().unwrap() {
                        TeePoll::Record(r) => streams[i].push(r),
                        TeePoll::Blocked => break,
                        TeePoll::End => continue,
                    }
                }
                if streams[i].len() < golden.len() {
                    open += 1;
                }
            }
        }
        for s in &streams {
            assert_eq!(s.as_slice(), golden.records(), "exactly-once, in order");
        }
        assert_eq!(tee.pulled(), golden.len() as u64);
        assert!(tee.high_water() <= tee.capacity());
    }

    #[test]
    fn fast_cursor_blocks_until_the_slow_one_drains() {
        let (tee, mut cursors) =
            TraceTee::new(ProgramSource::new(looping_program(50), 10_000), 2, 8);
        let cap = tee.capacity();
        let mut fast = cursors.pop().unwrap();
        let mut slow = cursors.pop().unwrap();
        // The fast cursor fills the whole ring…
        for _ in 0..cap {
            assert!(matches!(fast.poll_record().unwrap(), TeePoll::Record(_)));
        }
        // …and the next pull is backpressured, repeatedly (not sticky-fatal).
        assert_eq!(fast.poll_record().unwrap(), TeePoll::Blocked);
        assert_eq!(fast.poll_record().unwrap(), TeePoll::Blocked);
        assert_eq!(fast.budget(), 0);
        assert!(matches!(
            fast.next_record().unwrap_err(),
            IsaError::TraceIo { .. }
        ));
        // One slow-side consume releases exactly one slot.
        assert!(matches!(slow.poll_record().unwrap(), TeePoll::Record(_)));
        assert_eq!(fast.budget(), 1);
        assert!(matches!(fast.poll_record().unwrap(), TeePoll::Record(_)));
        assert_eq!(fast.poll_record().unwrap(), TeePoll::Blocked);
        assert_eq!(tee.high_water(), cap);
    }

    #[test]
    fn dropping_a_cursor_unblocks_the_survivors() {
        let (tee, mut cursors) =
            TraceTee::new(ProgramSource::new(looping_program(50), 10_000), 2, 8);
        let mut fast = cursors.pop().unwrap();
        let slow = cursors.pop().unwrap();
        for _ in 0..tee.capacity() {
            assert!(matches!(fast.poll_record().unwrap(), TeePoll::Record(_)));
        }
        assert_eq!(fast.poll_record().unwrap(), TeePoll::Blocked);
        drop(slow);
        // The laggard's hold is gone; the survivor runs to the end alone.
        let mut n = tee.capacity() as u64;
        while let TeePoll::Record(_) = fast.poll_record().unwrap() {
            n += 1;
        }
        assert_eq!(n, tee.pulled());
        assert!(tee.is_done());
    }

    #[test]
    fn upstream_errors_surface_at_the_same_position_for_every_cursor() {
        let mut b = ProgramBuilder::new();
        let _ = b.label("spin");
        b.jump_to("spin");
        // Budget of 5: records 0..5 stream, then the budget error.
        let (_tee, mut cursors) = TraceTee::new(ProgramSource::new(b.build().unwrap(), 5), 2, 64);
        let mut b_cursor = cursors.pop().unwrap();
        let mut a_cursor = cursors.pop().unwrap();
        for _ in 0..5 {
            assert!(a_cursor.next_record().unwrap().is_some());
        }
        let err = a_cursor.next_record().unwrap_err();
        assert_eq!(err, IsaError::InstructionBudgetExceeded { budget: 5 });
        // The second cursor replays the buffered records, then hits the
        // identical error at the identical position.
        for _ in 0..5 {
            assert!(b_cursor.next_record().unwrap().is_some());
        }
        assert_eq!(b_cursor.next_record().unwrap_err(), err);
    }

    #[test]
    fn failed_tee_reports_failure_and_errors_at_the_frontier_immediately() {
        let mut b = ProgramBuilder::new();
        let _ = b.label("spin");
        b.jump_to("spin");
        // Budget of 12 against a ring of 8: the failure lands while a
        // laggard still holds ring slots, so a frontier cursor must get
        // the error from the failure flag, not from ring drain.
        let (tee, mut cursors) = TraceTee::new(ProgramSource::new(b.build().unwrap(), 12), 2, 8);
        let mut b_cursor = cursors.pop().unwrap();
        let mut a_cursor = cursors.pop().unwrap();
        for _ in 0..8 {
            assert!(matches!(
                a_cursor.poll_record().unwrap(),
                TeePoll::Record(_)
            ));
        }
        assert_eq!(a_cursor.poll_record().unwrap(), TeePoll::Blocked);
        assert!(!tee.is_failed(), "backpressure is not failure");
        for _ in 0..5 {
            assert!(matches!(
                b_cursor.poll_record().unwrap(),
                TeePoll::Record(_)
            ));
        }
        // A consumes the remaining budget and trips the upstream error.
        for _ in 8..12 {
            assert!(matches!(
                a_cursor.poll_record().unwrap(),
                TeePoll::Record(_)
            ));
        }
        let err = a_cursor.poll_record().unwrap_err();
        assert_eq!(err, IsaError::InstructionBudgetExceeded { budget: 12 });
        assert!(tee.is_failed());
        assert!(!tee.is_done(), "failure and completion are distinct ends");
        // Sticky: polling again re-surfaces the same error even though B
        // still holds ring slots 5..12.
        assert_eq!(a_cursor.poll_record().unwrap_err(), err);
        // The laggard replays the buffered tail, then hits the same error.
        for _ in 5..12 {
            assert!(matches!(
                b_cursor.poll_record().unwrap(),
                TeePoll::Record(_)
            ));
        }
        assert_eq!(b_cursor.poll_record().unwrap_err(), err);
    }

    #[test]
    fn block_pulls_match_scalar_pulls_bit_identically() {
        // Block sizes straddling every boundary of the 8-slot ring:
        // degenerate (1), partial, exactly the ring, and far past it.
        for block in [1usize, 3, 8, 16, 64] {
            let golden = trace_program(&looping_program(40), 10_000).unwrap();
            let (_tee, mut cursors) =
                TraceTee::new(ProgramSource::new(looping_program(40), 10_000), 2, 8);
            let mut blk = cursors.pop().unwrap();
            let mut sca = cursors.pop().unwrap();
            let mut got_blk = Vec::new();
            let mut got_sca = Vec::new();
            let mut buf = vec![TraceRecord::default(); block];
            let (mut end_blk, mut end_sca) = (false, false);
            while !(end_blk && end_sca) {
                let before = (got_blk.len(), got_sca.len());
                if !end_blk {
                    match blk.poll_block(&mut buf).unwrap() {
                        TeeBlockPoll::Records(n) => got_blk.extend_from_slice(&buf[..n]),
                        TeeBlockPoll::Blocked => {}
                        TeeBlockPoll::End => end_blk = true,
                    }
                }
                if !end_sca {
                    for _ in 0..block {
                        match sca.poll_record().unwrap() {
                            TeePoll::Record(r) => got_sca.push(r),
                            TeePoll::Blocked => break,
                            TeePoll::End => {
                                end_sca = true;
                                break;
                            }
                        }
                    }
                }
                assert!(
                    end_blk || end_sca || (got_blk.len(), got_sca.len()) != before,
                    "lock-step block/scalar consumers deadlocked at {before:?} (block {block})"
                );
            }
            assert_eq!(got_blk, golden.records(), "block pull (size {block})");
            assert_eq!(got_sca, golden.records(), "scalar pull against block peer");
        }
    }

    #[test]
    fn upstream_error_straddling_a_block_edge_surfaces_after_the_partial_block() {
        let mut b = ProgramBuilder::new();
        let _ = b.label("spin");
        b.jump_to("spin");
        // Budget 11, blocks of 8: the second block is cut short at 3
        // records, and the error surfaces on the *next* pull — exactly
        // where a scalar puller would have raised it.
        let (tee, mut cursors) = TraceTee::new(ProgramSource::new(b.build().unwrap(), 11), 1, 32);
        let mut c = cursors.pop().unwrap();
        let mut buf = [TraceRecord::default(); 8];
        assert!(matches!(
            c.poll_block(&mut buf).unwrap(),
            TeeBlockPoll::Records(8)
        ));
        assert!(matches!(
            c.poll_block(&mut buf).unwrap(),
            TeeBlockPoll::Records(3)
        ));
        let err = c.poll_block(&mut buf).unwrap_err();
        assert_eq!(err, IsaError::InstructionBudgetExceeded { budget: 11 });
        assert!(tee.is_failed());
        assert_eq!(c.poll_block(&mut buf).unwrap_err(), err, "sticky");
    }

    #[test]
    fn len_hint_passes_through_and_records_are_renumbered() {
        let golden = trace_program(&looping_program(3), 10_000).unwrap();
        let (_tee, mut cursors) = TraceTee::new(golden.stream(), 1, 4);
        let mut c = cursors.pop().unwrap();
        assert_eq!(TraceSource::len_hint(&c), Some(golden.len() as u64));
        let mut seq = 0;
        while let Some(rec) = c.next_record().unwrap() {
            assert_eq!(rec.seq, Seq(seq), "tee numbers records in pull order");
            seq += 1;
        }
        // A single consumer releases slots as fast as it pulls them.
        assert_eq!(_tee.high_water(), 1);
    }
}
