//! The functional (architectural) executor.

use sqip_mem::MemImage;
use sqip_types::{Addr, Pc};

use crate::error::IsaError;
use crate::op::Op;
use crate::program::Program;
use crate::reg::{Reg, NUM_REGS};

/// The architectural state of a running program: registers, memory, PC.
#[derive(Debug, Clone)]
pub struct ArchState {
    regs: [u64; NUM_REGS],
    mem: MemImage,
    pc: Pc,
    halted: bool,
}

/// What one functional step did — everything the trace generator needs to
/// describe the dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// PC of the executed instruction.
    pub pc: Pc,
    /// PC of the next instruction (fall-through or branch target).
    pub next_pc: Pc,
    /// Effective address for memory operations.
    pub addr: Option<Addr>,
    /// Result value: destination value for value-producing ops, store data
    /// for stores, 0 otherwise.
    pub result: u64,
    /// Whether a control transfer was taken.
    pub taken: bool,
    /// Whether the instruction was `halt`.
    pub halted: bool,
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState::new()
    }
}

impl ArchState {
    /// Fresh state: zero registers, zero memory, PC 0.
    #[must_use]
    pub fn new() -> ArchState {
        ArchState {
            regs: [0; NUM_REGS],
            mem: MemImage::new(),
            pc: Pc::new(0),
            halted: false,
        }
    }

    /// Reads an architectural register (`r0` always reads 0).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an architectural register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// The memory image.
    #[must_use]
    pub fn mem(&self) -> &MemImage {
        &self.mem
    }

    /// Mutable access to memory (for pre-initialising data sections).
    pub fn mem_mut(&mut self) -> &mut MemImage {
        &mut self.mem
    }

    /// Current PC.
    #[must_use]
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Whether the program has executed `halt`.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Executes one instruction, updating state.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::PcOutOfRange`] if the PC walks past the program
    /// without hitting `halt`.
    pub fn step(&mut self, program: &Program) -> Result<StepOutcome, IsaError> {
        let pc = self.pc;
        let inst = program
            .fetch(pc)
            .ok_or(IsaError::PcOutOfRange { index: pc.index() })?;

        let s1 = inst.src1.map_or(0, |r| self.reg(r));
        let s2 = inst.src2.map_or(0, |r| self.reg(r));

        let mut out = StepOutcome {
            pc,
            next_pc: pc.next(),
            addr: None,
            result: 0,
            taken: false,
            halted: false,
        };

        match inst.op {
            Op::Load(size) => {
                let addr = Addr::new(s1.wrapping_add(inst.imm as u64));
                let v = self.mem.read(addr, size);
                if let Some(d) = inst.dst {
                    self.set_reg(d, v);
                }
                out.addr = Some(addr);
                out.result = v;
            }
            Op::Store(size) => {
                let addr = Addr::new(s1.wrapping_add(inst.imm as u64));
                let data = size.truncate(s2);
                self.mem.write(addr, size, data);
                out.addr = Some(addr);
                out.result = data;
            }
            Op::BranchZ | Op::BranchNZ => {
                if inst.op.branch_taken(s1) {
                    out.taken = true;
                    out.next_pc = Pc::from_index(inst.imm as usize);
                }
            }
            Op::Jump => {
                out.taken = true;
                out.next_pc = Pc::from_index(inst.imm as usize);
            }
            Op::Call => {
                let link = pc.next().0;
                if let Some(d) = inst.dst {
                    self.set_reg(d, link);
                }
                out.result = link;
                out.taken = true;
                out.next_pc = Pc::from_index(inst.imm as usize);
            }
            Op::Ret => {
                out.taken = true;
                out.next_pc = Pc::new(s1);
            }
            Op::Nop => {}
            Op::Halt => {
                self.halted = true;
                out.halted = true;
                out.next_pc = pc;
            }
            value_op => {
                let v = value_op.eval(s1, s2, inst.imm);
                if let Some(d) = inst.dst {
                    self.set_reg(d, v);
                }
                out.result = v;
            }
        }

        self.pc = out.next_pc;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use sqip_types::DataSize;

    fn run(b: ProgramBuilder, budget: u64) -> ArchState {
        let p = b.build().unwrap();
        let mut st = ArchState::new();
        for _ in 0..budget {
            if st.is_halted() {
                break;
            }
            st.step(&p).unwrap();
        }
        assert!(st.is_halted(), "program should halt within budget");
        st
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut b = ProgramBuilder::new();
        let (r1, r2, r3) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.load_imm(r1, 6);
        b.load_imm(r2, 7);
        b.mul(r3, r1, r2);
        b.halt();
        let st = run(b, 10);
        assert_eq!(st.reg(Reg::new(3)), 42);
    }

    #[test]
    fn store_load_round_trip() {
        let mut b = ProgramBuilder::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        b.load_imm(r1, 0xABCD);
        b.store(DataSize::Half, r1, Reg::ZERO, 0x200);
        b.load(DataSize::Half, r2, Reg::ZERO, 0x200);
        b.halt();
        let st = run(b, 10);
        assert_eq!(st.reg(Reg::new(2)), 0xABCD);
    }

    #[test]
    fn loop_iterates_correct_count() {
        let mut b = ProgramBuilder::new();
        let (ctr, acc) = (Reg::new(1), Reg::new(2));
        b.load_imm(ctr, 5);
        let top = b.label("top");
        b.add_imm(acc, acc, 3);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        let st = run(b, 100);
        assert_eq!(st.reg(Reg::new(2)), 15);
    }

    #[test]
    fn call_and_ret() {
        let mut b = ProgramBuilder::new();
        let (link, r1) = (Reg::new(30), Reg::new(1));
        b.call_to(link, "f");
        b.halt();
        b.place("f");
        b.load_imm(r1, 99);
        b.ret(link);
        let st = run(b, 10);
        assert_eq!(st.reg(Reg::new(1)), 99);
    }

    #[test]
    fn pc_out_of_range_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let p = b.build().unwrap();
        let mut st = ArchState::new();
        st.step(&p).unwrap();
        assert_eq!(
            st.step(&p).unwrap_err(),
            IsaError::PcOutOfRange { index: 1 }
        );
    }

    #[test]
    fn step_outcome_reports_memory_ops() {
        let mut b = ProgramBuilder::new();
        let r1 = Reg::new(1);
        b.load_imm(r1, 7);
        b.store(DataSize::Quad, r1, Reg::ZERO, 0x80);
        b.halt();
        let p = b.build().unwrap();
        let mut st = ArchState::new();
        st.step(&p).unwrap();
        let out = st.step(&p).unwrap();
        assert_eq!(out.addr, Some(Addr::new(0x80)));
        assert_eq!(out.result, 7, "store data is the result field");
        let out = st.step(&p).unwrap();
        assert!(out.halted);
    }

    #[test]
    fn halt_pins_pc() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let mut st = ArchState::new();
        let out = st.step(&p).unwrap();
        assert_eq!(out.next_pc, Pc::new(0), "halt does not advance PC");
        assert!(st.is_halted());
    }
}
