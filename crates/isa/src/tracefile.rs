//! The compact on-disk trace format: record a workload once, replay it
//! forever — on any machine, without the generator that produced it.
//!
//! # Format
//!
//! A `SQTR` file is an 8-byte header (`b"SQTR"`, a `u16` little-endian
//! version, two reserved bytes) followed by a sequence of
//! variable-length records and a terminator:
//!
//! ```text
//! record := op:u8  flags:u8  [dst:u8] [src0:u8] [src1:u8]
//!           pc:uvarint  imm:svarint  [addr:uvarint]
//!           result:uvarint  next_pc_delta:svarint
//! end    := 0xFF  count:uvarint
//! ```
//!
//! Sequence numbers are implicit (records are stored in fetch order),
//! access widths ride in the opcode, and `next_pc` is encoded as a
//! zig-zag delta from the fall-through PC — so straight-line code costs a
//! single byte for its control-flow fields. The terminator carries the
//! record count, letting the reader distinguish a complete file from a
//! truncated one.
//!
//! # Example
//!
//! ```
//! use sqip_isa::{trace_program, ProgramBuilder, Reg, TraceReader, TraceSource, TraceWriter};
//!
//! let mut b = ProgramBuilder::new();
//! b.load_imm(Reg::new(1), 42);
//! b.halt();
//! let trace = trace_program(&b.build()?, 100)?;
//!
//! // Record...
//! let mut file = Vec::new();
//! let mut w = TraceWriter::new(&mut file)?;
//! for r in trace.records() {
//!     w.write_record(r)?;
//! }
//! w.finish()?;
//!
//! // ...replay.
//! let mut r = TraceReader::new(file.as_slice())?;
//! assert_eq!(r.next_record()?, Some(trace.records()[0]));
//! # Ok::<(), sqip_isa::IsaError>(())
//! ```

use std::io::{Read, Write};

use sqip_types::{Addr, DataSize, Pc, Seq};

use crate::error::IsaError;
use crate::op::Op;
use crate::reg::Reg;
use crate::source::TraceSource;
use crate::trace::TraceRecord;

/// The trace-file magic bytes.
pub const TRACE_MAGIC: [u8; 4] = *b"SQTR";
/// The trace-file format version this build reads and writes.
pub const TRACE_VERSION: u16 = 1;

const END_MARKER: u8 = 0xFF;

const F_TAKEN: u8 = 1 << 0;
const F_DST: u8 = 1 << 1;
const F_SRC0: u8 = 1 << 2;
const F_SRC1: u8 = 1 << 3;
const F_ADDR: u8 = 1 << 4;

fn io_err(context: &str, e: &std::io::Error) -> IsaError {
    IsaError::TraceIo {
        detail: format!("{context}: {e}"),
    }
}

fn corrupt(detail: impl Into<String>) -> IsaError {
    IsaError::TraceFormat {
        detail: detail.into(),
    }
}

// ---- opcode table ----

const SIZES: [DataSize; 4] = [
    DataSize::Byte,
    DataSize::Half,
    DataSize::Word,
    DataSize::Quad,
];

fn size_code(s: DataSize) -> u8 {
    match s {
        DataSize::Byte => 0,
        DataSize::Half => 1,
        DataSize::Word => 2,
        DataSize::Quad => 3,
    }
}

fn op_code(op: Op) -> u8 {
    match op {
        Op::Add => 0,
        Op::Sub => 1,
        Op::Mul => 2,
        Op::And => 3,
        Op::Or => 4,
        Op::Xor => 5,
        Op::Shl => 6,
        Op::Shr => 7,
        Op::CmpLt => 8,
        Op::CmpEq => 9,
        Op::AddImm => 10,
        Op::MulImm => 11,
        Op::LoadImm => 12,
        Op::FAdd => 13,
        Op::FMul => 14,
        Op::FDiv => 15,
        Op::Load(s) => 16 + size_code(s),
        Op::Store(s) => 20 + size_code(s),
        Op::BranchZ => 24,
        Op::BranchNZ => 25,
        Op::Jump => 26,
        Op::Call => 27,
        Op::Ret => 28,
        Op::Nop => 29,
        Op::Halt => 30,
    }
}

fn op_from_code(code: u8) -> Option<Op> {
    Some(match code {
        0 => Op::Add,
        1 => Op::Sub,
        2 => Op::Mul,
        3 => Op::And,
        4 => Op::Or,
        5 => Op::Xor,
        6 => Op::Shl,
        7 => Op::Shr,
        8 => Op::CmpLt,
        9 => Op::CmpEq,
        10 => Op::AddImm,
        11 => Op::MulImm,
        12 => Op::LoadImm,
        13 => Op::FAdd,
        14 => Op::FMul,
        15 => Op::FDiv,
        16..=19 => Op::Load(SIZES[(code - 16) as usize]),
        20..=23 => Op::Store(SIZES[(code - 20) as usize]),
        24 => Op::BranchZ,
        25 => Op::BranchNZ,
        26 => Op::Jump,
        27 => Op::Call,
        28 => Op::Ret,
        29 => Op::Nop,
        30 => Op::Halt,
        _ => return None,
    })
}

// ---- varints ----

fn write_uv(w: &mut impl Write, mut v: u64) -> Result<(), IsaError> {
    let mut buf = [0u8; 10];
    let mut n = 0;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        buf[n] = byte | if v == 0 { 0 } else { 0x80 };
        n += 1;
        if v == 0 {
            break;
        }
    }
    w.write_all(&buf[..n])
        .map_err(|e| io_err("writing record", &e))
}

fn write_sv(w: &mut impl Write, v: i64) -> Result<(), IsaError> {
    // Zig-zag: small magnitudes of either sign stay short.
    write_uv(w, ((v << 1) ^ (v >> 63)) as u64)
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---- writer ----

/// Streams [`TraceRecord`]s into the compact binary format.
///
/// Call [`TraceWriter::finish`] when done — it writes the terminator the
/// reader uses to tell a complete file from a truncated one.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace file: writes the header.
    ///
    /// # Errors
    ///
    /// [`IsaError::TraceIo`] on write failure.
    pub fn new(mut w: W) -> Result<TraceWriter<W>, IsaError> {
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&TRACE_MAGIC);
        header[4..6].copy_from_slice(&TRACE_VERSION.to_le_bytes());
        w.write_all(&header)
            .map_err(|e| io_err("writing header", &e))?;
        Ok(TraceWriter { w, count: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// [`IsaError::TraceIo`] on write failure.
    pub fn write_record(&mut self, rec: &TraceRecord) -> Result<(), IsaError> {
        let mut flags = 0u8;
        flags |= F_TAKEN * u8::from(rec.taken);
        flags |= F_DST * u8::from(rec.dst.is_some());
        flags |= F_SRC0 * u8::from(rec.srcs[0].is_some());
        flags |= F_SRC1 * u8::from(rec.srcs[1].is_some());
        flags |= F_ADDR * u8::from(rec.addr.is_some());
        self.w
            .write_all(&[op_code(rec.op), flags])
            .map_err(|e| io_err("writing record", &e))?;
        for reg in [rec.dst, rec.srcs[0], rec.srcs[1]].into_iter().flatten() {
            self.w
                .write_all(&[reg.index() as u8])
                .map_err(|e| io_err("writing record", &e))?;
        }
        write_uv(&mut self.w, rec.pc.0)?;
        write_sv(&mut self.w, rec.imm)?;
        if let Some(addr) = rec.addr {
            write_uv(&mut self.w, addr.0)?;
        }
        write_uv(&mut self.w, rec.result)?;
        write_sv(
            &mut self.w,
            rec.next_pc.0.wrapping_sub(rec.pc.next().0) as i64,
        )?;
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Writes the terminator (with the record count) and returns the
    /// underlying writer.
    ///
    /// # Errors
    ///
    /// [`IsaError::TraceIo`] on write or flush failure.
    pub fn finish(mut self) -> Result<W, IsaError> {
        self.w
            .write_all(&[END_MARKER])
            .map_err(|e| io_err("writing terminator", &e))?;
        write_uv(&mut self.w, self.count)?;
        self.w.flush().map_err(|e| io_err("flushing trace", &e))?;
        Ok(self.w)
    }
}

/// Drains `source` into `w`, returning the number of records written.
///
/// This is the "record once" half of record/replay: pair it with
/// [`TraceReader`] to capture any source — a generator, an interpreter, a
/// filtered stream — as a portable artifact.
///
/// # Errors
///
/// Propagates source errors and [`IsaError::TraceIo`] write failures.
pub fn record_trace<S: TraceSource + ?Sized>(
    source: &mut S,
    w: impl Write,
) -> Result<u64, IsaError> {
    let mut writer = TraceWriter::new(w)?;
    while let Some(rec) = source.next_record()? {
        writer.write_record(&rec)?;
    }
    let n = writer.count();
    writer.finish()?;
    Ok(n)
}

// ---- reader ----

/// Streams [`TraceRecord`]s out of the compact binary format.
///
/// Implements [`TraceSource`], so a recorded file drives the simulator
/// exactly like a live generator — in O(1) memory.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    next_seq: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace stream: reads and validates the header.
    ///
    /// # Errors
    ///
    /// [`IsaError::TraceIo`] on read failure, [`IsaError::TraceFormat`]
    /// on bad magic or an unsupported version.
    pub fn new(mut r: R) -> Result<TraceReader<R>, IsaError> {
        let mut header = [0u8; 8];
        r.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                corrupt("file shorter than the 8-byte header")
            } else {
                io_err("reading header", &e)
            }
        })?;
        if header[..4] != TRACE_MAGIC {
            return Err(corrupt("bad magic (not a SQTR trace file)"));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != TRACE_VERSION {
            return Err(corrupt(format!(
                "unsupported trace version {version} (this build reads {TRACE_VERSION})"
            )));
        }
        Ok(TraceReader {
            r,
            next_seq: 0,
            done: false,
        })
    }

    fn read_byte(&mut self) -> Result<u8, IsaError> {
        let mut b = [0u8; 1];
        self.r.read_exact(&mut b).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                corrupt(format!(
                    "truncated after {} records (no terminator)",
                    self.next_seq
                ))
            } else {
                io_err("reading record", &e)
            }
        })?;
        Ok(b[0])
    }

    fn read_uv(&mut self) -> Result<u64, IsaError> {
        let mut v = 0u64;
        for shift in (0..70).step_by(7) {
            let byte = self.read_byte()?;
            if shift == 63 && byte > 1 {
                return Err(corrupt("varint overflows 64 bits"));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(corrupt("varint longer than 10 bytes"))
    }

    fn read_sv(&mut self) -> Result<i64, IsaError> {
        self.read_uv().map(zigzag_decode)
    }

    fn read_reg(&mut self) -> Result<Reg, IsaError> {
        let idx = self.read_byte()?;
        if usize::from(idx) >= crate::reg::NUM_REGS || idx == 0 {
            return Err(corrupt(format!("invalid register index {idx}")));
        }
        Ok(Reg::new(idx))
    }
}

impl<R: Read> TraceSource for TraceReader<R> {
    fn next_record(&mut self) -> Result<Option<TraceRecord>, IsaError> {
        if self.done {
            return Ok(None);
        }
        let code = self.read_byte()?;
        if code == END_MARKER {
            let declared = self.read_uv()?;
            if declared != self.next_seq {
                return Err(corrupt(format!(
                    "terminator declares {declared} records but {} were read",
                    self.next_seq
                )));
            }
            self.done = true;
            return Ok(None);
        }
        let op =
            op_from_code(code).ok_or_else(|| corrupt(format!("unknown opcode byte {code:#x}")))?;
        let flags = self.read_byte()?;
        let dst = (flags & F_DST != 0).then(|| self.read_reg()).transpose()?;
        let src0 = (flags & F_SRC0 != 0).then(|| self.read_reg()).transpose()?;
        let src1 = (flags & F_SRC1 != 0).then(|| self.read_reg()).transpose()?;
        let pc = Pc::new(self.read_uv()?);
        let imm = self.read_sv()?;
        let addr = (flags & F_ADDR != 0)
            .then(|| self.read_uv().map(Addr::new))
            .transpose()?;
        if op.mem_size().is_some() && addr.is_none() {
            return Err(corrupt(format!("memory op `{op}` without an address")));
        }
        let result = self.read_uv()?;
        let next_pc = Pc::new(pc.next().0.wrapping_add(self.read_sv()? as u64));
        let rec = TraceRecord {
            seq: Seq(self.next_seq),
            pc,
            op,
            dst,
            srcs: [src0, src1],
            imm,
            addr,
            size: op.mem_size().unwrap_or_default(),
            result,
            taken: flags & F_TAKEN != 0,
            next_pc,
        };
        self.next_seq += 1;
        Ok(Some(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::trace::trace_program;

    fn mixed_trace() -> crate::Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.load_imm(ctr, 20);
        b.load_imm(v, -7);
        let top = b.label("top");
        b.store(DataSize::Half, v, Reg::ZERO, 0x104);
        b.load(DataSize::Byte, t, Reg::ZERO, 0x105);
        b.fmul(v, v, v);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        trace_program(&b.build().unwrap(), 10_000).unwrap()
    }

    fn encode(trace: &crate::Trace) -> Vec<u8> {
        let mut buf = Vec::new();
        record_trace(&mut trace.stream(), &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_preserves_every_record() {
        let trace = mixed_trace();
        let buf = encode(&trace);
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut got = Vec::new();
        while let Some(r) = reader.next_record().unwrap() {
            got.push(r);
        }
        assert_eq!(got, trace.records());
        assert_eq!(reader.next_record().unwrap(), None, "stays exhausted");
    }

    #[test]
    fn encoding_is_compact() {
        let trace = mixed_trace();
        let buf = encode(&trace);
        assert!(
            buf.len() < trace.len() * 16,
            "{} bytes for {} records",
            buf.len(),
            trace.len()
        );
    }

    #[test]
    fn truncated_file_is_reported() {
        let trace = mixed_trace();
        let buf = encode(&trace);
        // Chop mid-stream: the reader must fail with a format error, not
        // silently yield a short trace.
        let mut reader = TraceReader::new(&buf[..buf.len() / 2]).unwrap();
        let err = loop {
            match reader.next_record() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("truncated file read to a clean end"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, IsaError::TraceFormat { .. }), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let err = TraceReader::new(&b"NOPE0000"[..]).unwrap_err();
        assert!(matches!(err, IsaError::TraceFormat { .. }), "{err}");

        let mut buf = encode(&mixed_trace());
        buf[4] = 99; // version
        let err = TraceReader::new(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn wrong_terminator_count_is_corrupt() {
        let trace = mixed_trace();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        w.write_record(&trace.records()[0]).unwrap();
        w.count = 2; // lie
        w.finish().unwrap();
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        assert!(reader.next_record().unwrap().is_some());
        let err = reader.next_record().unwrap_err();
        assert!(err.to_string().contains("terminator"), "{err}");
    }
}
