//! A small load/store micro-ISA, its functional executor, and golden
//! dynamic-trace generation.
//!
//! The paper evaluates on Alpha AXP binaries of SPEC2000/MediaBench. We do
//! not have those binaries (or an Alpha front end), so the reproduction
//! defines a compact register machine that exposes exactly the features the
//! store-load forwarding study needs: byte/half/word/quad loads and stores,
//! integer and floating-point operation classes with distinct latencies,
//! conditional branches, and calls/returns for the return-address stack.
//!
//! Programs are built with [`ProgramBuilder`] (an assembler with labels),
//! executed functionally by [`ArchState::step`], and lowered to a golden
//! dynamic-instruction stream that the cycle-level simulator in
//! `sqip-core` replays — either materialized as a [`Trace`], or pulled
//! record by record through the [`TraceSource`] trait ([`ProgramSource`]
//! streams a program without materialization; [`tracefile`] records and
//! replays streams on disk). The
//! trace carries architectural addresses and values; the timing simulator
//! recomputes *speculative* values through the modelled dataflow so that
//! forwarding mistakes propagate and pre-commit re-execution performs a real
//! value comparison.
//!
//! # Example
//!
//! ```
//! use sqip_isa::{ArchState, ProgramBuilder, Reg, trace_program};
//! use sqip_types::DataSize;
//!
//! let mut b = ProgramBuilder::new();
//! let (r1, r2) = (Reg::new(1), Reg::new(2));
//! b.load_imm(r1, 42);
//! b.store(DataSize::Quad, r1, Reg::ZERO, 0x100); // mem[0x100] = 42
//! b.load(DataSize::Quad, r2, Reg::ZERO, 0x100);  // r2 = mem[0x100]
//! b.halt();
//! let program = b.build()?;
//!
//! let trace = trace_program(&program, 100)?;
//! assert_eq!(trace.records().last().map(|r| r.pc.index()), Some(3));
//! # Ok::<(), sqip_isa::IsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod exec;
mod inst;
mod op;
mod program;
mod reg;
mod snapshot;
mod source;
mod tee;
mod trace;
pub mod tracefile;

pub use error::IsaError;
pub use exec::{ArchState, StepOutcome};
pub use inst::StaticInst;
pub use op::{Op, OpClass};
pub use program::{Label, Program, ProgramBuilder};
pub use reg::{Reg, NUM_REGS};
pub use source::{ProgramSource, TraceCursor, TraceSource};
pub use tee::{TeeCursor, TeePoll, TraceTee};
pub use trace::{trace_program, trace_program_with_state, Trace, TraceRecord, MAX_SRCS};
pub use tracefile::{record_trace, TraceReader, TraceWriter};
