//! Pull-based trace sources: the simulator's open input axis.
//!
//! A [`TraceSource`] yields [`TraceRecord`]s one at a time, so a consumer
//! (the cycle-level simulator in `sqip-core`) only ever holds a bounded
//! in-flight window of records — run length is no longer capped by memory.
//! Three producers are built in:
//!
//! * a materialized [`Trace`] (via [`Trace::stream`] / [`TraceCursor`]),
//! * a streaming functional interpreter over a [`Program`]
//!   ([`ProgramSource`] — `trace_program` without the `Vec`),
//! * the compact on-disk trace format
//!   ([`TraceReader`](crate::TraceReader) in [`crate::tracefile`]).

use crate::error::IsaError;
use crate::exec::ArchState;
use crate::program::Program;
use crate::trace::{step_record, Trace, TraceRecord};

/// A pull-based stream of dynamic [`TraceRecord`]s.
///
/// Implementations produce records in fetch order. Consumers renumber
/// records sequentially as they pull (sources *should* emit correct
/// [`TraceRecord::seq`] values, but a consumer never depends on it), and
/// may buffer a bounded lookahead — a conforming source must therefore not
/// assume its records are consumed immediately.
///
/// # Example
///
/// A source is anything that can produce records — here, a materialized
/// trace and a streaming interpreter over the same program, yielding the
/// identical record sequence without materializing it:
///
/// ```
/// use sqip_isa::{trace_program, ProgramBuilder, ProgramSource, Reg, TraceSource};
///
/// let mut b = ProgramBuilder::new();
/// let r1 = Reg::new(1);
/// b.load_imm(r1, 3);
/// let top = b.label("top");
/// b.add_imm(r1, r1, -1);
/// b.branch_nz(r1, top);
/// b.halt();
/// let program = b.build()?;
///
/// let trace = trace_program(&program, 1000)?;
/// let mut streamed = ProgramSource::new(program, 1000);
/// let mut cursor = trace.stream();
/// while let Some(rec) = cursor.next_record()? {
///     assert_eq!(streamed.next_record()?, Some(rec));
/// }
/// assert_eq!(streamed.next_record()?, None);
/// # Ok::<(), sqip_isa::IsaError>(())
/// ```
pub trait TraceSource {
    /// Pulls the next record, or `None` once the stream is exhausted.
    ///
    /// After `None` (or an error), further calls keep returning the same
    /// outcome.
    ///
    /// # Errors
    ///
    /// Source-specific: interpreter faults ([`IsaError::PcOutOfRange`],
    /// [`IsaError::InstructionBudgetExceeded`]), trace-file I/O or
    /// corruption ([`IsaError::TraceIo`], [`IsaError::TraceFormat`]).
    fn next_record(&mut self) -> Result<Option<TraceRecord>, IsaError>;

    /// Pulls up to `out.len()` records into the front of `out`, returning
    /// how many were written. The block-pull fast path: one virtual call
    /// amortised over a whole block, letting sources decode runs of
    /// records without per-record dispatch.
    ///
    /// Semantics are exactly those of calling [`TraceSource::next_record`]
    /// `out.len()` times and stopping at the first `None` or error:
    ///
    /// * `Ok(n)` with `n < out.len()` means the stream ended (`n` may be
    ///   0) **or** the source failed after producing `n > 0` records — in
    ///   the latter case the error is sticky and resurfaces on the next
    ///   call, exactly where the scalar path would have raised it.
    /// * `Err(e)` is returned only when *no* record could be produced.
    ///
    /// The default implementation loops the scalar path, so every
    /// existing source conforms automatically.
    ///
    /// # Errors
    ///
    /// Same as [`TraceSource::next_record`].
    fn next_block(&mut self, out: &mut [TraceRecord]) -> Result<usize, IsaError> {
        let mut n = 0;
        while n < out.len() {
            match self.next_record() {
                Ok(Some(rec)) => {
                    out[n] = rec;
                    n += 1;
                }
                Ok(None) => break,
                // Sticky-error contract: the same error resurfaces on the
                // next pull, so a partial block loses nothing.
                Err(e) if n == 0 => return Err(e),
                Err(_) => break,
            }
        }
        Ok(n)
    }

    /// The exact total record count, when cheaply known without running
    /// the stream (materialized traces); `None` for generative sources.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn next_record(&mut self) -> Result<Option<TraceRecord>, IsaError> {
        (**self).next_record()
    }
    fn next_block(&mut self, out: &mut [TraceRecord]) -> Result<usize, IsaError> {
        (**self).next_block(out)
    }
    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn next_record(&mut self) -> Result<Option<TraceRecord>, IsaError> {
        (**self).next_record()
    }
    fn next_block(&mut self, out: &mut [TraceRecord]) -> Result<usize, IsaError> {
        (**self).next_block(out)
    }
    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

/// A [`TraceSource`] over a borrowed, fully materialized [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    records: &'a [TraceRecord],
    pos: usize,
}

impl<'a> TraceCursor<'a> {
    pub(crate) fn new(trace: &'a Trace) -> TraceCursor<'a> {
        TraceCursor {
            records: trace.records(),
            pos: 0,
        }
    }
}

impl TraceSource for TraceCursor<'_> {
    fn next_record(&mut self) -> Result<Option<TraceRecord>, IsaError> {
        let rec = self.records.get(self.pos).copied();
        self.pos += rec.is_some() as usize;
        Ok(rec)
    }

    fn next_block(&mut self, out: &mut [TraceRecord]) -> Result<usize, IsaError> {
        let rest = &self.records[self.pos.min(self.records.len())..];
        let n = rest.len().min(out.len());
        out[..n].copy_from_slice(&rest[..n]);
        self.pos += n;
        Ok(n)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records.len() as u64)
    }
}

/// A streaming functional interpreter: executes a [`Program`] and yields
/// its golden trace record by record, without materializing it.
///
/// Semantically identical to [`crate::trace_program`] — same records, same
/// budget handling — but in O(1) memory, so multi-million-instruction (or
/// effectively unbounded) workloads can drive the simulator directly.
#[derive(Debug, Clone)]
pub struct ProgramSource {
    program: Program,
    state: ArchState,
    budget: u64,
    emitted: u64,
    failed: bool,
}

impl ProgramSource {
    /// Streams `program` from a fresh [`ArchState`], erroring (like
    /// [`crate::trace_program`]) if it does not halt within `max_insts`
    /// dynamic instructions.
    #[must_use]
    pub fn new(program: Program, max_insts: u64) -> ProgramSource {
        ProgramSource::with_state(program, ArchState::new(), max_insts)
    }

    /// Like [`ProgramSource::new`] but starting from caller-provided
    /// state (e.g. with a pre-initialised data section).
    #[must_use]
    pub fn with_state(program: Program, state: ArchState, max_insts: u64) -> ProgramSource {
        ProgramSource {
            program,
            state,
            budget: max_insts,
            emitted: 0,
            failed: false,
        }
    }

    /// Records emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl TraceSource for ProgramSource {
    fn next_record(&mut self) -> Result<Option<TraceRecord>, IsaError> {
        if self.failed {
            return Err(IsaError::InstructionBudgetExceeded {
                budget: self.budget,
            });
        }
        if self.state.is_halted() {
            return Ok(None);
        }
        if self.emitted >= self.budget {
            self.failed = true;
            return Err(IsaError::InstructionBudgetExceeded {
                budget: self.budget,
            });
        }
        let rec = step_record(&self.program, &mut self.state, self.emitted)?;
        self.emitted += 1;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::reg::Reg;
    use crate::trace::trace_program;
    use sqip_types::DataSize;

    fn looping_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let (ctr, v) = (Reg::new(1), Reg::new(2));
        b.load_imm(ctr, iters);
        let top = b.label("top");
        b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
        b.load(DataSize::Quad, v, Reg::ZERO, 0x100);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        b.build().unwrap()
    }

    fn drain(mut s: impl TraceSource) -> Vec<TraceRecord> {
        let mut v = Vec::new();
        while let Some(r) = s.next_record().unwrap() {
            v.push(r);
        }
        v
    }

    #[test]
    fn cursor_replays_the_trace_exactly() {
        let trace = trace_program(&looping_program(7), 10_000).unwrap();
        let cursor = trace.stream();
        assert_eq!(cursor.len_hint(), Some(trace.len() as u64));
        assert_eq!(drain(cursor), trace.records());
    }

    #[test]
    fn program_source_matches_trace_program() {
        let trace = trace_program(&looping_program(9), 10_000).unwrap();
        let streamed = drain(ProgramSource::new(looping_program(9), 10_000));
        assert_eq!(streamed, trace.records());
    }

    #[test]
    fn program_source_budget_error_is_sticky() {
        let mut b = ProgramBuilder::new();
        let _ = b.label("spin");
        b.jump_to("spin");
        let mut s = ProgramSource::new(b.build().unwrap(), 5);
        for _ in 0..5 {
            assert!(s.next_record().unwrap().is_some());
        }
        let err = s.next_record().unwrap_err();
        assert_eq!(err, IsaError::InstructionBudgetExceeded { budget: 5 });
        assert_eq!(s.next_record().unwrap_err(), err, "error repeats");
    }

    #[test]
    fn exhausted_sources_keep_returning_none() {
        let mut s = ProgramSource::new(looping_program(1), 100);
        while s.next_record().unwrap().is_some() {}
        assert_eq!(s.next_record().unwrap(), None);
    }

    fn drain_blocks(s: &mut impl TraceSource, block: usize) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        let mut buf = vec![TraceRecord::default(); block];
        loop {
            let n = s.next_block(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        out
    }

    #[test]
    fn block_pull_matches_scalar_pull_across_block_sizes() {
        let golden = trace_program(&looping_program(9), 10_000).unwrap();
        for block in [1usize, 3, 7, 64, 257] {
            // The overriding impl (TraceCursor's memcpy fast path)…
            assert_eq!(
                drain_blocks(&mut golden.stream(), block),
                golden.records(),
                "TraceCursor, block {block}"
            );
            // …and the default trait impl (ProgramSource loops the
            // scalar path) both conform bit for bit.
            assert_eq!(
                drain_blocks(&mut ProgramSource::new(looping_program(9), 10_000), block),
                golden.records(),
                "ProgramSource, block {block}"
            );
        }
    }

    #[test]
    fn block_pull_surfaces_errors_after_the_partial_block() {
        let mut b = ProgramBuilder::new();
        let _ = b.label("spin");
        b.jump_to("spin");
        // Budget 5, blocks of 4: one full block, then a partial block of
        // 1 — the error is withheld so the record is not lost — then the
        // sticky error itself, exactly where the scalar path raises it.
        let mut s = ProgramSource::new(b.build().unwrap(), 5);
        let mut buf = [TraceRecord::default(); 4];
        assert_eq!(s.next_block(&mut buf).unwrap(), 4);
        assert_eq!(s.next_block(&mut buf).unwrap(), 1);
        let err = s.next_block(&mut buf).unwrap_err();
        assert_eq!(err, IsaError::InstructionBudgetExceeded { budget: 5 });
        assert_eq!(s.next_block(&mut buf).unwrap_err(), err, "sticky");
    }
}
