//! Saturating counters, the confidence mechanism in every predictor table.

/// An `n`-bit saturating counter with a prediction threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatCounter {
    value: u8,
    max: u8,
    threshold: u8,
}

impl SatCounter {
    /// Builds a counter saturating at `max`, predicting "yes" at or above
    /// `threshold`, starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `threshold > max` or `max == 0`.
    #[must_use]
    pub fn new(max: u8, threshold: u8) -> SatCounter {
        assert!(max > 0, "counter must have at least one bit of range");
        assert!(threshold <= max, "threshold must be reachable");
        SatCounter {
            value: 0,
            max,
            threshold,
        }
    }

    /// A 4-bit counter (saturating at 15) with the given threshold — the
    /// width the paper budgets for FSP and DDP entries.
    #[must_use]
    pub fn four_bit(threshold: u8) -> SatCounter {
        SatCounter::new(15, threshold)
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Whether the counter is at or above its prediction threshold.
    #[must_use]
    pub fn predicts(&self) -> bool {
        self.value >= self.threshold
    }

    /// Whether the counter has decayed to zero (replacement candidate).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.value == 0
    }

    /// Saturating increment by `amount`.
    pub fn strengthen(&mut self, amount: u8) {
        self.value = self.value.saturating_add(amount).min(self.max);
    }

    /// Saturating decrement by `amount`.
    pub fn weaken(&mut self, amount: u8) {
        self.value = self.value.saturating_sub(amount);
    }

    /// Resets to zero.
    pub fn clear(&mut self) {
        self.value = 0;
    }

    /// Jumps straight to the saturated maximum (used when a new dependence
    /// is learned from a flush, which the paper treats as strong evidence).
    pub fn saturate(&mut self) {
        self.value = self.max;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_ways() {
        let mut c = SatCounter::new(3, 2);
        c.weaken(5);
        assert_eq!(c.value(), 0);
        c.strengthen(10);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn threshold_semantics() {
        let mut c = SatCounter::four_bit(8);
        assert!(!c.predicts());
        c.strengthen(8);
        assert!(c.predicts());
        c.weaken(1);
        assert!(!c.predicts());
    }

    #[test]
    fn asymmetric_training_models_ratio() {
        // 8:1 ratio — one positive outweighs seven negatives.
        let mut c = SatCounter::four_bit(8);
        c.strengthen(8);
        for _ in 0..7 {
            c.weaken(1);
        }
        assert!(!c.predicts());
        c.strengthen(8);
        assert!(c.predicts());
    }

    #[test]
    fn clear_and_saturate() {
        let mut c = SatCounter::four_bit(8);
        c.saturate();
        assert_eq!(c.value(), 15);
        assert!(c.predicts());
        c.clear();
        assert!(c.is_zero());
    }

    #[test]
    #[should_panic(expected = "reachable")]
    fn threshold_above_max_rejected() {
        let _ = SatCounter::new(3, 4);
    }
}

sqip_snapshot::snapshot_struct!(SatCounter {
    value,
    max,
    threshold,
});
