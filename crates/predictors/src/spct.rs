//! The Store PC Table (SPCT), §2 — trains store-load pair predictors under
//! pre-commit re-execution.

use sqip_types::{Addr, AddrSpan};

use crate::ssbf::fold;

/// An address-indexed table holding, per byte, the (partial) PC of the last
/// committed store to write that byte.
///
/// Re-execution detects *that* a load went wrong but not *which* store it
/// should have forwarded from; a committing load probes the SPCT with its
/// address to recover the producing store's PC and train the FSP.
#[derive(Debug, Clone)]
pub struct Spct {
    entries: Vec<Option<u64>>,
}

impl Spct {
    /// Builds an SPCT with `entries` byte slots (2K in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Spct {
        assert!(
            entries.is_power_of_two(),
            "SPCT size must be a power of two"
        );
        Spct {
            entries: vec![None; entries],
        }
    }

    /// Number of byte slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The SPCT always has slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Records a committing store's partial PC over the bytes it wrote.
    pub fn update(&mut self, span: AddrSpan, partial_pc: u64) {
        let mask = self.entries.len() - 1;
        for b in span.byte_addrs() {
            self.entries[fold(b.0) & mask] = Some(partial_pc);
        }
    }

    /// The partial PC of the last committed store to write this byte.
    #[must_use]
    pub fn lookup_byte(&self, addr: Addr) -> Option<u64> {
        self.entries[fold(addr.0) & (self.entries.len() - 1)]
    }

    /// Clears the table (SSN wrap-around drain).
    pub fn clear(&mut self) {
        self.entries.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqip_types::DataSize;

    #[test]
    fn per_byte_tracking() {
        let mut spct = Spct::new(2048);
        spct.update(Addr::new(0x100).span(DataSize::Word), 0xAA);
        spct.update(Addr::new(0x102).span(DataSize::Byte), 0xBB);
        assert_eq!(spct.lookup_byte(Addr::new(0x100)), Some(0xAA));
        assert_eq!(
            spct.lookup_byte(Addr::new(0x102)),
            Some(0xBB),
            "newer store wins its byte"
        );
        assert_eq!(spct.lookup_byte(Addr::new(0x103)), Some(0xAA));
        assert_eq!(spct.lookup_byte(Addr::new(0x104)), None);
    }

    #[test]
    fn aliasing_low_bits() {
        let mut spct = Spct::new(64);
        spct.update(Addr::new(3).span(DataSize::Byte), 0x7);
        assert_eq!(spct.lookup_byte(Addr::new(64 + 3)), Some(0x7));
    }

    #[test]
    fn clear_resets() {
        let mut spct = Spct::new(64);
        spct.update(Addr::new(0).span(DataSize::Byte), 1);
        spct.clear();
        assert_eq!(spct.lookup_byte(Addr::new(0)), None);
    }
}

sqip_snapshot::snapshot_struct!(Spct { entries });
