//! Branch prediction: hybrid gShare/bimodal + BTB + return-address stack,
//! per the paper's §4.1 front-end configuration.

use sqip_types::Pc;

use serde::{Deserialize, Serialize};

/// Branch predictor geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchConfig {
    /// Entries in each direction table (gShare, bimodal, chooser); the
    /// paper uses a 4K-entry hybrid.
    pub direction_entries: usize,
    /// BTB entries (2K in the paper).
    pub btb_entries: usize,
    /// BTB associativity (4 in the paper).
    pub btb_ways: usize,
    /// Return address stack depth (32 in the paper).
    pub ras_depth: usize,
    /// Global history length in bits.
    pub history_bits: u32,
}

impl Default for BranchConfig {
    fn default() -> BranchConfig {
        BranchConfig {
            direction_entries: 4096,
            btb_entries: 2048,
            btb_ways: 4,
            ras_depth: 32,
            history_bits: 12,
        }
    }
}

/// What the front end predicted for one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPrediction {
    /// Predicted direction (always true for unconditional transfers).
    pub taken: bool,
    /// Predicted target, if the BTB/RAS produced one.
    pub target: Option<Pc>,
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    target: Pc,
    lru: u64,
}

/// A hybrid gShare/bimodal direction predictor with a chooser, a
/// set-associative BTB, and a return-address stack.
///
/// The timing simulator runs on the architecturally correct path, so the
/// predictor's role is to decide *whether* each control transfer redirects
/// fetch (misprediction penalty) — exactly the accounting trace-driven
/// simulators of the paper's era used.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BranchConfig,
    gshare: Vec<u8>,
    bimodal: Vec<u8>,
    chooser: Vec<u8>, // 0..=3; >=2 selects gShare
    btb: Vec<BtbEntry>,
    ras: Vec<Pc>,
    history: u64,
    tick: u64,
}

impl Default for BranchPredictor {
    fn default() -> BranchPredictor {
        BranchPredictor::new(BranchConfig::default())
    }
}

impl BranchPredictor {
    /// Builds a predictor.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (non-power-of-two tables, zero ways).
    #[must_use]
    pub fn new(config: BranchConfig) -> BranchPredictor {
        assert!(
            config.direction_entries.is_power_of_two(),
            "direction tables must be a power of two"
        );
        assert!(config.btb_ways > 0, "BTB must have at least one way");
        let btb_sets = config.btb_entries / config.btb_ways;
        assert!(
            btb_sets > 0 && btb_sets.is_power_of_two(),
            "BTB set count must be a power of two"
        );
        BranchPredictor {
            config,
            gshare: vec![1; config.direction_entries], // weakly not-taken
            bimodal: vec![1; config.direction_entries],
            chooser: vec![2; config.direction_entries], // weakly prefer gShare
            btb: vec![BtbEntry::default(); config.btb_entries],
            ras: Vec::with_capacity(config.ras_depth),
            history: 0,
            tick: 0,
        }
    }

    /// Predicts a conditional branch's direction and target.
    pub fn predict_conditional(&mut self, pc: Pc) -> BranchPrediction {
        let g = self.gshare[self.gshare_index(pc)] >= 2;
        let b = self.bimodal[self.pc_index(pc)] >= 2;
        let use_gshare = self.chooser[self.pc_index(pc)] >= 2;
        let taken = if use_gshare { g } else { b };
        BranchPrediction {
            taken,
            target: if taken { self.btb_lookup(pc) } else { None },
        }
    }

    /// Predicts an unconditional jump/call (always taken; target from BTB).
    /// For calls, also pushes the return address onto the RAS.
    pub fn predict_unconditional(&mut self, pc: Pc, is_call: bool) -> BranchPrediction {
        let target = self.btb_lookup(pc);
        if is_call {
            if self.ras.len() == self.config.ras_depth {
                self.ras.remove(0); // overflow discards the oldest frame
            }
            self.ras.push(pc.next());
        }
        BranchPrediction {
            taken: true,
            target,
        }
    }

    /// Predicts a return (target from the RAS, falling back to the BTB).
    pub fn predict_return(&mut self, pc: Pc) -> BranchPrediction {
        let target = self.ras.pop().or_else(|| self.btb_lookup(pc));
        BranchPrediction {
            taken: true,
            target,
        }
    }

    /// Updates direction tables, history, and BTB with a resolved branch.
    pub fn update(&mut self, pc: Pc, conditional: bool, taken: bool, target: Pc) {
        if conditional {
            let gi = self.gshare_index(pc);
            let pi = self.pc_index(pc);
            let g_correct = (self.gshare[gi] >= 2) == taken;
            let b_correct = (self.bimodal[pi] >= 2) == taken;
            bump(&mut self.gshare[gi], taken);
            bump(&mut self.bimodal[pi], taken);
            match (g_correct, b_correct) {
                (true, false) => bump(&mut self.chooser[pi], true),
                (false, true) => bump(&mut self.chooser[pi], false),
                _ => {}
            }
            self.history =
                ((self.history << 1) | u64::from(taken)) & ((1 << self.config.history_bits) - 1);
        }
        if taken {
            self.btb_insert(pc, target);
        }
    }

    /// Current RAS depth (diagnostics).
    #[must_use]
    pub fn ras_depth(&self) -> usize {
        self.ras.len()
    }

    fn pc_index(&self, pc: Pc) -> usize {
        pc.table_index(self.config.direction_entries)
    }

    fn gshare_index(&self, pc: Pc) -> usize {
        (self.pc_index(pc) as u64 ^ self.history) as usize & (self.config.direction_entries - 1)
    }

    fn btb_slice(&self, pc: Pc) -> (usize, u64) {
        let sets = self.config.btb_entries / self.config.btb_ways;
        let set = pc.table_index(sets);
        (set * self.config.btb_ways, (pc.0 >> 2) / sets as u64)
    }

    fn btb_lookup(&self, pc: Pc) -> Option<Pc> {
        let (base, tag) = self.btb_slice(pc);
        self.btb[base..base + self.config.btb_ways]
            .iter()
            .find(|e| e.valid && e.tag == tag)
            .map(|e| e.target)
    }

    fn btb_insert(&mut self, pc: Pc, target: Pc) {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.config.btb_ways;
        let (base, tag) = self.btb_slice(pc);
        let set = &mut self.btb[base..base + ways];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.tag == tag) {
            e.target = target;
            e.lru = tick;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| (e.valid, e.lru))
            .expect("at least one way");
        *victim = BtbEntry {
            valid: true,
            tag,
            target,
            lru: tick,
        };
    }
}

fn bump(counter: &mut u8, up: bool) {
    if up {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken_branch() {
        let mut bp = BranchPredictor::default();
        let pc = Pc::new(0x40);
        let tgt = Pc::new(0x10);
        for _ in 0..4 {
            bp.update(pc, true, true, tgt);
        }
        let p = bp.predict_conditional(pc);
        assert!(p.taken);
        assert_eq!(p.target, Some(tgt));
    }

    #[test]
    fn learns_never_taken_branch() {
        let mut bp = BranchPredictor::default();
        let pc = Pc::new(0x40);
        for _ in 0..4 {
            bp.update(pc, true, false, Pc::new(0));
        }
        assert!(!bp.predict_conditional(pc).taken);
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut bp = BranchPredictor::default();
        let pc = Pc::new(0x80);
        let tgt = Pc::new(0x20);
        // Alternating T/NT: bimodal hovers, gShare keyed by history learns.
        let mut correct = 0;
        for i in 0..200u32 {
            let actual = i % 2 == 0;
            if bp.predict_conditional(pc).taken == actual {
                correct += 1;
            }
            bp.update(pc, true, actual, tgt);
        }
        assert!(
            correct > 150,
            "hybrid should learn the alternating pattern (got {correct}/200)"
        );
    }

    #[test]
    fn ras_pairs_calls_and_returns() {
        let mut bp = BranchPredictor::default();
        let call_pc = Pc::new(0x100);
        bp.predict_unconditional(call_pc, true);
        assert_eq!(bp.ras_depth(), 1);
        let p = bp.predict_return(Pc::new(0x500));
        assert_eq!(p.target, Some(call_pc.next()));
        assert_eq!(bp.ras_depth(), 0);
    }

    #[test]
    fn ras_overflow_discards_oldest() {
        let mut bp = BranchPredictor::new(BranchConfig {
            ras_depth: 2,
            ..BranchConfig::default()
        });
        bp.predict_unconditional(Pc::new(0x10), true);
        bp.predict_unconditional(Pc::new(0x20), true);
        bp.predict_unconditional(Pc::new(0x30), true);
        assert_eq!(bp.predict_return(Pc::new(0)).target, Some(Pc::new(0x34)));
        assert_eq!(bp.predict_return(Pc::new(0)).target, Some(Pc::new(0x24)));
        assert_eq!(
            bp.predict_return(Pc::new(0)).target,
            None,
            "oldest frame was discarded on overflow (no BTB entry either)"
        );
    }

    #[test]
    fn btb_miss_on_cold_branch() {
        let mut bp = BranchPredictor::default();
        let p = bp.predict_unconditional(Pc::new(0x40), false);
        assert!(p.taken);
        assert_eq!(p.target, None, "cold BTB cannot provide a target");
    }

    #[test]
    fn btb_replacement_is_lru() {
        let mut bp = BranchPredictor::new(BranchConfig {
            btb_entries: 8,
            btb_ways: 2,
            ..BranchConfig::default()
        });
        // Three branches in the same BTB set (stride = 4 sets * 4 bytes).
        let a = Pc::new(0x00);
        let b = Pc::new(0x10);
        let c = Pc::new(0x20);
        bp.update(a, false, true, Pc::new(0xA0));
        bp.update(b, false, true, Pc::new(0xB0));
        bp.update(a, false, true, Pc::new(0xA0)); // refresh a
        bp.update(c, false, true, Pc::new(0xC0)); // evicts b
        assert_eq!(
            bp.predict_unconditional(a, false).target,
            Some(Pc::new(0xA0))
        );
        assert_eq!(bp.predict_unconditional(b, false).target, None);
        assert_eq!(
            bp.predict_unconditional(c, false).target,
            Some(Pc::new(0xC0))
        );
    }
}

sqip_snapshot::snapshot_struct!(BranchConfig {
    direction_entries,
    btb_entries,
    btb_ways,
    ras_depth,
    history_bits,
});
sqip_snapshot::snapshot_struct!(BtbEntry {
    valid,
    tag,
    target,
    lru,
});
sqip_snapshot::snapshot_struct!(BranchPredictor {
    config,
    gshare,
    bimodal,
    chooser,
    btb,
    ras,
    history,
    tick,
});
