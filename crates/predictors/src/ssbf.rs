//! The Store Sequence Bloom Filter (SSBF), from the SVW work the paper
//! builds on (§2).

use sqip_types::{AddrSpan, Ssn};

/// An address-indexed table tracking, per byte, the SSN of the most recent
/// *committed* store to that byte.
///
/// Organised at 1-byte granularity (conceptually banked 8 ways so an 8-byte
/// access touches each bank once); being a lossy hash ("Bloom filter"),
/// aliasing can only *over-state* the newest store SSN, which makes the SVW
/// filter conservative — false positives cause harmless extra
/// re-executions, never missed violations.
///
/// # Example
///
/// ```
/// use sqip_predictors::Ssbf;
/// use sqip_types::{Addr, DataSize, Ssn};
///
/// let mut ssbf = Ssbf::new(2048);
/// ssbf.update(Addr::new(0x100).span(DataSize::Quad), Ssn::new(17));
/// assert_eq!(ssbf.newest(Addr::new(0x104).span(DataSize::Word)), Ssn::new(17));
/// ```
#[derive(Debug, Clone)]
pub struct Ssbf {
    entries: Vec<Ssn>,
}

impl Ssbf {
    /// Builds an SSBF with `entries` byte slots (2K in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Ssbf {
        assert!(
            entries.is_power_of_two(),
            "SSBF size must be a power of two"
        );
        Ssbf {
            entries: vec![Ssn::NONE; entries],
        }
    }

    /// Number of byte slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The SSBF always has slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Records a committing store: every byte it wrote now maps to its SSN.
    pub fn update(&mut self, span: AddrSpan, ssn: Ssn) {
        let mask = self.entries.len() - 1;
        for b in span.byte_addrs() {
            self.entries[fold(b.0) & mask] = ssn;
        }
    }

    /// The SSN of the newest committed store that wrote any byte of `span`
    /// ([`Ssn::NONE`] if no tracked store did).
    #[must_use]
    pub fn newest(&self, span: AddrSpan) -> Ssn {
        let mask = self.entries.len() - 1;
        span.byte_addrs()
            .map(|b| self.entries[fold(b.0) & mask])
            .max()
            .unwrap_or(Ssn::NONE)
    }

    /// Clears the filter (SSN wrap-around drain).
    pub fn clear(&mut self) {
        self.entries.fill(Ssn::NONE);
    }
}

/// XOR-folds the high address bits into the index so aliasing between
/// regions is pseudo-random rather than systematic (adjacent bytes still
/// map to distinct entries, preserving the 8-way banked organisation).
pub(crate) fn fold(addr: u64) -> usize {
    (addr ^ (addr >> 11) ^ (addr >> 22)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqip_types::{Addr, DataSize};

    #[test]
    fn untouched_bytes_read_none() {
        let ssbf = Ssbf::new(64);
        assert_eq!(ssbf.newest(Addr::new(0x10).span(DataSize::Quad)), Ssn::NONE);
    }

    #[test]
    fn overlapping_access_sees_newest() {
        let mut ssbf = Ssbf::new(2048);
        ssbf.update(Addr::new(0x100).span(DataSize::Quad), Ssn::new(10));
        ssbf.update(Addr::new(0x104).span(DataSize::Word), Ssn::new(20));
        // A quad load over [0x100,0x108): bytes 0-3 say 10, bytes 4-7 say 20.
        assert_eq!(
            ssbf.newest(Addr::new(0x100).span(DataSize::Quad)),
            Ssn::new(20)
        );
        // A word load over [0x100,0x104) only sees the older store.
        assert_eq!(
            ssbf.newest(Addr::new(0x100).span(DataSize::Word)),
            Ssn::new(10)
        );
    }

    #[test]
    fn aliasing_is_conservative() {
        let mut ssbf = Ssbf::new(64);
        ssbf.update(Addr::new(0x0).span(DataSize::Byte), Ssn::new(5));
        // Address 64 aliases address 0 in a 64-entry filter.
        assert_eq!(
            ssbf.newest(Addr::new(64).span(DataSize::Byte)),
            Ssn::new(5),
            "false positive over-states, never under-states"
        );
    }

    #[test]
    fn clear_resets() {
        let mut ssbf = Ssbf::new(64);
        ssbf.update(Addr::new(0).span(DataSize::Quad), Ssn::new(9));
        ssbf.clear();
        assert_eq!(ssbf.newest(Addr::new(0).span(DataSize::Quad)), Ssn::NONE);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Ssbf::new(100);
    }
}

sqip_snapshot::snapshot_struct!(Ssbf { entries });
