//! The original Store Sets predictor (Chrysos & Emer, ISCA'98), used by the
//! paper's Table 1 "preceding proposals" configuration and as a comparison
//! point for the reformulated FSP/SAT scheduler.

use sqip_types::{Pc, Ssn};

use serde::{Deserialize, Serialize};

/// Store Sets geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreSetsConfig {
    /// SSIT entries (the paper's load scheduler uses a 1K-entry predictor).
    pub ssit_entries: usize,
    /// LFST entries (number of distinct store sets that can be live).
    pub lfst_entries: usize,
}

impl Default for StoreSetsConfig {
    fn default() -> StoreSetsConfig {
        StoreSetsConfig {
            ssit_entries: 1024,
            lfst_entries: 256,
        }
    }
}

/// The SSIT + LFST pair.
///
/// * The **Store Set ID Table** (SSIT) maps both load and store PCs to
///   store-set IDs (SSIDs).
/// * The **Last Fetched Store Table** (LFST) maps each SSID to the SSN of
///   the most recently renamed store in that set.
///
/// Differences from the paper's FSP/SAT reformulation (§3.4): Store Sets
/// can represent arbitrarily many store dependences per load (sets merge),
/// but serialises *all* loads and stores within a set, whereas the FSP/SAT
/// serialises a load against a single predicted store instance.
#[derive(Debug, Clone)]
pub struct StoreSets {
    config: StoreSetsConfig,
    ssit: Vec<Option<u32>>,
    lfst: Vec<Ssn>,
    next_ssid: u32,
}

impl Default for StoreSets {
    fn default() -> StoreSets {
        StoreSets::new(StoreSetsConfig::default())
    }
}

impl StoreSets {
    /// Builds the predictor.
    ///
    /// # Panics
    ///
    /// Panics if either table size is not a power of two.
    #[must_use]
    pub fn new(config: StoreSetsConfig) -> StoreSets {
        assert!(
            config.ssit_entries.is_power_of_two(),
            "SSIT size must be a power of two"
        );
        assert!(
            config.lfst_entries.is_power_of_two(),
            "LFST size must be a power of two"
        );
        StoreSets {
            config,
            ssit: vec![None; config.ssit_entries],
            lfst: vec![Ssn::NONE; config.lfst_entries],
            next_ssid: 0,
        }
    }

    /// At rename, a load asks which store (SSN) it must wait for:
    /// the last fetched store of its set, if any.
    #[must_use]
    pub fn rename_load(&self, pc: Pc) -> Ssn {
        match self.ssit[self.index(pc)] {
            Some(ssid) => self.lfst[self.lfst_index(ssid)],
            None => Ssn::NONE,
        }
    }

    /// At rename, a store (a) learns which older store it must order behind
    /// (in-set store serialisation) and (b) becomes its set's last fetched
    /// store.
    pub fn rename_store(&mut self, pc: Pc, ssn: Ssn) -> Ssn {
        match self.ssit[self.index(pc)] {
            Some(ssid) => {
                let idx = self.lfst_index(ssid);
                let predecessor = self.lfst[idx];
                self.lfst[idx] = ssn;
                predecessor
            }
            None => Ssn::NONE,
        }
    }

    /// When a store executes (or is squashed), it vacates the LFST if it is
    /// still the set's last fetched store.
    pub fn store_executed(&mut self, pc: Pc, ssn: Ssn) {
        if let Some(ssid) = self.ssit[self.index(pc)] {
            let idx = self.lfst_index(ssid);
            if self.lfst[idx] == ssn {
                self.lfst[idx] = Ssn::NONE;
            }
        }
    }

    /// Trains on a memory-ordering violation between `load_pc` and
    /// `store_pc`, applying the Chrysos–Emer set assignment/merge rules.
    pub fn violation(&mut self, load_pc: Pc, store_pc: Pc) {
        let li = self.index(load_pc);
        let si = self.index(store_pc);
        match (self.ssit[li], self.ssit[si]) {
            (None, None) => {
                let ssid = self.alloc_ssid();
                self.ssit[li] = Some(ssid);
                self.ssit[si] = Some(ssid);
            }
            (Some(ssid), None) => self.ssit[si] = Some(ssid),
            (None, Some(ssid)) => self.ssit[li] = Some(ssid),
            (Some(a), Some(b)) => {
                // Both assigned: both adopt the smaller SSID ("declares as
                // the winner the smaller of the two store set IDs").
                let winner = a.min(b);
                self.ssit[li] = Some(winner);
                self.ssit[si] = Some(winner);
            }
        }
    }

    /// Clears both tables.
    pub fn clear(&mut self) {
        self.ssit.fill(None);
        self.lfst.fill(Ssn::NONE);
    }

    /// Clears only the LFST (pipeline flush: every in-flight store was
    /// squashed, so no set has a live last-fetched store; the learned sets
    /// themselves survive).
    pub fn clear_lfst(&mut self) {
        self.lfst.fill(Ssn::NONE);
    }

    fn alloc_ssid(&mut self) -> u32 {
        let ssid = self.next_ssid;
        self.next_ssid = self.next_ssid.wrapping_add(1);
        ssid
    }

    fn index(&self, pc: Pc) -> usize {
        pc.table_index(self.config.ssit_entries)
    }

    fn lfst_index(&self, ssid: u32) -> usize {
        ssid as usize & (self.config.lfst_entries - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_pair_is_unordered() {
        let ss = StoreSets::default();
        assert_eq!(ss.rename_load(Pc::new(0x40)), Ssn::NONE);
    }

    #[test]
    fn violation_creates_dependence() {
        let mut ss = StoreSets::default();
        let (ld, st) = (Pc::new(0x40), Pc::new(0x80));
        ss.violation(ld, st);
        let pred = ss.rename_store(st, Ssn::new(7));
        assert_eq!(pred, Ssn::NONE, "first store has no in-set predecessor");
        assert_eq!(ss.rename_load(ld), Ssn::new(7), "load waits for the store");
    }

    #[test]
    fn store_execution_clears_lfst() {
        let mut ss = StoreSets::default();
        let (ld, st) = (Pc::new(0x40), Pc::new(0x80));
        ss.violation(ld, st);
        ss.rename_store(st, Ssn::new(7));
        ss.store_executed(st, Ssn::new(7));
        assert_eq!(
            ss.rename_load(ld),
            Ssn::NONE,
            "executed store imposes no wait"
        );
    }

    #[test]
    fn in_set_stores_serialise() {
        let mut ss = StoreSets::default();
        let (ld, st_a, st_b) = (Pc::new(0x40), Pc::new(0x80), Pc::new(0xC0));
        ss.violation(ld, st_a);
        ss.violation(ld, st_b); // merges st_b into the same set
        ss.rename_store(st_a, Ssn::new(5));
        let pred = ss.rename_store(st_b, Ssn::new(6));
        assert_eq!(pred, Ssn::new(5), "second store in set orders behind first");
        assert_eq!(
            ss.rename_load(ld),
            Ssn::new(6),
            "load waits for last fetched"
        );
    }

    #[test]
    fn merge_prefers_smaller_ssid() {
        let mut ss = StoreSets::default();
        ss.violation(Pc::new(0x10), Pc::new(0x20)); // ssid 0
        ss.violation(Pc::new(0x30), Pc::new(0x44)); // ssid 1
                                                    // A violation between members of the two sets reassigns both
                                                    // participants to the smaller SSID (0). Merging is per-PC, not
                                                    // transitive: 0x30 keeps ssid 1, exactly as in Chrysos–Emer.
        ss.violation(Pc::new(0x10), Pc::new(0x44));
        ss.rename_store(Pc::new(0x44), Ssn::new(9));
        assert_eq!(
            ss.rename_load(Pc::new(0x10)),
            Ssn::new(9),
            "load now orders behind the store pulled into its set"
        );
        assert_eq!(
            ss.rename_load(Pc::new(0x30)),
            Ssn::NONE,
            "non-participant of the merging violation keeps its old set"
        );
    }

    #[test]
    fn stale_lfst_not_cleared_by_older_store() {
        let mut ss = StoreSets::default();
        let (ld, st) = (Pc::new(0x40), Pc::new(0x80));
        ss.violation(ld, st);
        ss.rename_store(st, Ssn::new(5));
        ss.rename_store(st, Ssn::new(8)); // younger instance takes over
        ss.store_executed(st, Ssn::new(5)); // older instance executes
        assert_eq!(
            ss.rename_load(ld),
            Ssn::new(8),
            "LFST still names the younger"
        );
    }
}

sqip_snapshot::snapshot_struct!(StoreSetsConfig {
    ssit_entries,
    lfst_entries,
});
sqip_snapshot::snapshot_struct!(StoreSets {
    config,
    ssit,
    lfst,
    next_ssid,
});
