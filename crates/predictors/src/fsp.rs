//! The Forwarding Store Predictor (FSP), §3.2.

use sqip_types::Pc;

use crate::counter::SatCounter;
use crate::TrainRatio;

use serde::{Deserialize, Serialize};

/// FSP geometry and training parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FspConfig {
    /// Total entries (the paper's default is 4K; Figure 5 sweeps 512–8K).
    pub entries: usize,
    /// Set associativity (default 2; Figure 5 sweeps 1–32). This bounds how
    /// many static store dependences one load can represent.
    pub ways: usize,
    /// Partial tag width in bits (the paper budgets 1 byte).
    pub tag_bits: u32,
    /// Partial store-PC width in bits (1 byte; also the SAT index width).
    pub store_pc_bits: u32,
    /// Positive:negative training weights (default 8:1).
    pub ratio: TrainRatio,
    /// Counter prediction threshold (counter max is 15, 4 bits).
    pub threshold: u8,
    /// Path-history bits XORed into the set index (0 disables). This is
    /// the paper's §6 future-work suggestion: "path-based information
    /// might increase both forwarding prediction and delay prediction
    /// accuracy" — it lets one static load whose producer depends on the
    /// control path (e.g. stores selected by branches) occupy a different
    /// set per path instead of thrashing one set.
    pub path_bits: u32,
}

impl Default for FspConfig {
    fn default() -> FspConfig {
        FspConfig {
            entries: 4096,
            ways: 2,
            tag_bits: 8,
            store_pc_bits: 8,
            ratio: TrainRatio::new(8, 1),
            threshold: 8,
            path_bits: 0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct FspEntry {
    valid: bool,
    tag: u64,
    store_pc: u64,
    counter: SatCounter,
    lru: u64,
}

/// The PC-indexed, set-associative table mapping each load PC to the store
/// PCs it recently forwarded from.
///
/// Entries hold *partial* store PCs (default 8 bits), which double as SAT
/// indices; partial tags model the aliasing a real 10KB structure has.
///
/// # Example
///
/// ```
/// use sqip_predictors::Fsp;
/// use sqip_types::Pc;
///
/// let mut fsp = Fsp::default();
/// let (ld, st) = (Pc::new(0x100), Pc::new(0x40));
/// fsp.learn(ld, fsp.partial_store_pc(st));
/// assert_eq!(fsp.predict(ld), vec![fsp.partial_store_pc(st)]);
/// ```
#[derive(Debug, Clone)]
pub struct Fsp {
    config: FspConfig,
    sets: Vec<FspEntry>,
    tick: u64,
}

impl Default for Fsp {
    fn default() -> Fsp {
        Fsp::new(FspConfig::default())
    }
}

impl Fsp {
    /// Builds an FSP.
    ///
    /// # Panics
    ///
    /// Panics if geometry is degenerate (entries not divisible into a
    /// power-of-two set count, or zero ways).
    #[must_use]
    pub fn new(config: FspConfig) -> Fsp {
        assert!(config.ways > 0, "FSP must have at least one way");
        let sets = config.entries / config.ways;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "FSP set count must be a power of two (got {sets})"
        );
        let empty = FspEntry {
            valid: false,
            tag: 0,
            store_pc: 0,
            counter: SatCounter::four_bit(config.threshold),
            lru: 0,
        };
        Fsp {
            config,
            sets: vec![empty; config.entries],
            tick: 0,
        }
    }

    /// The configured parameters.
    #[must_use]
    pub fn config(&self) -> FspConfig {
        self.config
    }

    /// The partial store-PC representation used inside the table and as the
    /// SAT index.
    #[must_use]
    pub fn partial_store_pc(&self, store_pc: Pc) -> u64 {
        store_pc.partial(self.config.store_pc_bits)
    }

    /// All confident store (partial) PCs for this load, in no particular
    /// order. At most `ways` results.
    #[must_use]
    pub fn predict(&self, load_pc: Pc) -> Vec<u64> {
        self.predict_with_path(load_pc, 0)
    }

    /// Path-qualified prediction (see [`FspConfig::path_bits`]); with
    /// `path_bits == 0` the path is ignored and this equals
    /// [`Fsp::predict`].
    #[must_use]
    pub fn predict_with_path(&self, load_pc: Pc, path: u64) -> Vec<u64> {
        let (base, tag) = self.slice_with_path(load_pc, path);
        self.sets[base..base + self.config.ways]
            .iter()
            .filter(|e| e.valid && e.tag == tag && e.counter.predicts())
            .map(|e| e.store_pc)
            .collect()
    }

    /// Inserts (or re-saturates) the dependence `load_pc → store partial
    /// PC`. Called when a mis-forwarding flush reveals a dependence the
    /// table did not represent. The victim is the invalid way, else the way
    /// with a zero counter, else the LRU way.
    pub fn learn(&mut self, load_pc: Pc, store_partial_pc: u64) {
        self.learn_with_path(load_pc, store_partial_pc, 0);
    }

    /// Path-qualified [`Fsp::learn`].
    pub fn learn_with_path(&mut self, load_pc: Pc, store_partial_pc: u64, path: u64) {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.config.ways;
        let (base, tag) = self.slice_with_path(load_pc, path);
        let set = &mut self.sets[base..base + ways];

        if let Some(e) = set
            .iter_mut()
            .find(|e| e.valid && e.tag == tag && e.store_pc == store_partial_pc)
        {
            e.counter.saturate();
            e.lru = tick;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| (e.valid, !e.counter.is_zero(), e.lru))
            .expect("at least one way");
        victim.valid = true;
        victim.tag = tag;
        victim.store_pc = store_partial_pc;
        victim.counter = SatCounter::four_bit(self.config.threshold);
        victim.counter.saturate();
        victim.lru = tick;
    }

    /// Reinforces an existing dependence (correct forwarding at commit).
    /// Does nothing if the entry is not present or the ratio is 0:1.
    pub fn strengthen(&mut self, load_pc: Pc, store_partial_pc: u64) {
        self.strengthen_with_path(load_pc, store_partial_pc, 0);
    }

    /// Path-qualified [`Fsp::strengthen`].
    pub fn strengthen_with_path(&mut self, load_pc: Pc, store_partial_pc: u64, path: u64) {
        self.tick += 1;
        let tick = self.tick;
        let positive = self.config.ratio.positive;
        if let Some(e) = self.entry_mut(load_pc, store_partial_pc, path) {
            e.counter.strengthen(positive);
            e.lru = tick;
        }
    }

    /// Weakens a dependence (the load and the store turned out to be too
    /// far apart for forwarding, or the prediction named the right PC but
    /// the wrong dynamic instance).
    pub fn weaken(&mut self, load_pc: Pc, store_partial_pc: u64) {
        self.weaken_with_path(load_pc, store_partial_pc, 0);
    }

    /// Path-qualified [`Fsp::weaken`].
    pub fn weaken_with_path(&mut self, load_pc: Pc, store_partial_pc: u64, path: u64) {
        let negative = self.config.ratio.negative;
        if let Some(e) = self.entry_mut(load_pc, store_partial_pc, path) {
            e.counter.weaken(negative);
        }
    }

    /// Clears the whole table (SSN wrap-around drain).
    pub fn clear(&mut self) {
        for e in &mut self.sets {
            e.valid = false;
            e.counter.clear();
        }
    }

    /// Number of valid entries (diagnostics).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().filter(|e| e.valid).count()
    }

    fn slice_with_path(&self, pc: Pc, path: u64) -> (usize, u64) {
        let sets = self.config.entries / self.config.ways;
        let path_mask = if self.config.path_bits == 0 {
            0
        } else {
            (1u64 << self.config.path_bits.min(63)) - 1
        };
        let set = (pc.table_index(sets) ^ (path & path_mask) as usize) & (sets - 1);
        (
            set * self.config.ways,
            pc.partial_tag(sets, self.config.tag_bits),
        )
    }

    fn entry_mut(
        &mut self,
        load_pc: Pc,
        store_partial_pc: u64,
        path: u64,
    ) -> Option<&mut FspEntry> {
        let ways = self.config.ways;
        let (base, tag) = self.slice_with_path(load_pc, path);
        self.sets[base..base + ways]
            .iter_mut()
            .find(|e| e.valid && e.tag == tag && e.store_pc == store_partial_pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fsp {
        Fsp::new(FspConfig {
            entries: 32,
            ways: 2,
            ..FspConfig::default()
        })
    }

    #[test]
    fn empty_table_predicts_nothing() {
        let fsp = Fsp::default();
        assert!(fsp.predict(Pc::new(0x40)).is_empty());
        assert_eq!(fsp.occupancy(), 0);
    }

    #[test]
    fn learn_then_predict() {
        let mut fsp = small();
        let ld = Pc::new(0x100);
        fsp.learn(ld, 0x17);
        assert_eq!(fsp.predict(ld), vec![0x17]);
        assert_eq!(fsp.occupancy(), 1);
    }

    #[test]
    fn associativity_bounds_dependences() {
        let mut fsp = small();
        let ld = Pc::new(0x100);
        fsp.learn(ld, 1);
        fsp.learn(ld, 2);
        fsp.learn(ld, 3); // evicts one of the first two
        let preds = fsp.predict(ld);
        assert_eq!(preds.len(), 2, "2-way FSP represents at most 2 stores");
        assert!(preds.contains(&3), "newly learned dependence is present");
    }

    #[test]
    fn negative_training_unlearns_slowly() {
        let mut fsp = small();
        let ld = Pc::new(0x100);
        fsp.learn(ld, 9); // counter = 15
        for _ in 0..7 {
            fsp.weaken(ld, 9);
        }
        assert_eq!(fsp.predict(ld), vec![9], "still above threshold at 8");
        fsp.weaken(ld, 9);
        assert!(fsp.predict(ld).is_empty(), "crossed below threshold");
    }

    #[test]
    fn strengthen_recovers_confidence() {
        let mut fsp = small();
        let ld = Pc::new(0x100);
        fsp.learn(ld, 9);
        for _ in 0..8 {
            fsp.weaken(ld, 9);
        }
        assert!(fsp.predict(ld).is_empty());
        fsp.strengthen(ld, 9); // +8 with the default ratio
        assert_eq!(fsp.predict(ld), vec![9]);
    }

    #[test]
    fn strengthen_of_absent_entry_is_noop() {
        let mut fsp = small();
        fsp.strengthen(Pc::new(0x100), 5);
        assert_eq!(fsp.occupancy(), 0);
    }

    #[test]
    fn tag_mismatch_is_a_miss() {
        let mut fsp = small();
        let sets = 16; // 32 entries / 2 ways
        let ld_a = Pc::from_index(3);
        let ld_b = Pc::from_index(3 + sets); // same set, different tag
        fsp.learn(ld_a, 0x11);
        assert!(fsp.predict(ld_b).is_empty());
    }

    #[test]
    fn aliasing_loads_share_entries() {
        let mut fsp = small();
        let sets = 16;
        let tag_space = 256usize; // 8-bit tags
        let ld_a = Pc::from_index(3);
        let ld_alias = Pc::from_index(3 + sets * tag_space); // same set AND tag
        fsp.learn(ld_a, 0x11);
        assert_eq!(fsp.predict(ld_alias), vec![0x11], "partial tags alias");
    }

    #[test]
    fn clear_empties_table() {
        let mut fsp = small();
        fsp.learn(Pc::new(0x100), 1);
        fsp.clear();
        assert_eq!(fsp.occupancy(), 0);
        assert!(fsp.predict(Pc::new(0x100)).is_empty());
    }

    #[test]
    fn direct_mapped_works() {
        let mut fsp = Fsp::new(FspConfig {
            entries: 16,
            ways: 1,
            ..FspConfig::default()
        });
        let ld = Pc::new(0x100);
        fsp.learn(ld, 1);
        fsp.learn(ld, 2);
        assert_eq!(fsp.predict(ld), vec![2], "direct-mapped holds one store");
    }

    #[test]
    fn partial_store_pc_width() {
        let fsp = Fsp::default();
        let a = Pc::from_index(7);
        let b = Pc::from_index(7 + 256);
        assert_eq!(
            fsp.partial_store_pc(a),
            fsp.partial_store_pc(b),
            "8-bit partial PCs alias"
        );
    }
}

sqip_snapshot::snapshot_struct!(FspConfig {
    entries,
    ways,
    tag_bits,
    store_pc_bits,
    ratio,
    threshold,
    path_bits,
});
sqip_snapshot::snapshot_struct!(FspEntry {
    valid,
    tag,
    store_pc,
    counter,
    lru,
});
sqip_snapshot::snapshot_struct!(Fsp { config, sets, tick });
