//! The prediction and filtering structures of the SQIP design.
//!
//! This crate implements every predictor the paper describes or depends on:
//!
//! * [`Fsp`] — the **Forwarding Store Predictor**, a PC-indexed
//!   set-associative table mapping each load PC to the small set of store
//!   PCs it recently forwarded from (§3.2). The analog of Store Sets' SSIT.
//! * [`Sat`] — the **Store Alias Table**, mapping each (partial) store PC
//!   to the SSN of its youngest in-flight instance, with checkpoint/log
//!   repair like a register alias table (§3.2). The analog of the LFST.
//! * [`Ddp`] — the **Delay Distance Predictor**, mapping difficult loads to
//!   a store distance that must commit before the load may execute (§3.3),
//!   inspired by the Exclusive Collision predictor.
//! * [`Ssbf`] / [`Spct`] — the byte-granular, address-indexed **Store
//!   Sequence Bloom Filter** and **Store PC Table** used by SVW-filtered
//!   load re-execution and predictor training (§2, Roth ISCA'05).
//! * [`BranchPredictor`] — 4K-entry hybrid gShare/bimodal + 2K-entry 4-way
//!   BTB + 32-entry RAS (§4.1).
//! * [`StoreSets`] — the original SSIT/LFST Store Sets predictor (Chrysos &
//!   Emer), used by the "preceding proposals" baseline of Table 1.
//!
//! All tables are size/associativity/ratio-parameterised so the Figure 5
//! sensitivity sweeps are direct constructor arguments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod counter;
mod ddp;
mod fsp;
mod sat;
mod spct;
mod ssbf;
mod storesets;

pub use branch::{BranchConfig, BranchPrediction, BranchPredictor};
pub use counter::SatCounter;
pub use ddp::{Ddp, DdpConfig};
pub use fsp::{Fsp, FspConfig};
pub use sat::{Sat, SatCheckpoint};
pub use spct::Spct;
pub use ssbf::Ssbf;
pub use storesets::{StoreSets, StoreSetsConfig};

use serde::{Deserialize, Serialize};

/// A training ratio: how much positive events outweigh negative ones.
///
/// The paper trains the FSP at 8:1 and the DDP at 4:1 by default, and
/// sweeps the DDP ratio from 0:1 (never learn) to 1:0 (never unlearn) in
/// Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainRatio {
    /// Counter increment on a positive (reinforcing) event.
    pub positive: u8,
    /// Counter decrement on a negative (weakening) event.
    pub negative: u8,
}

impl TrainRatio {
    /// Builds a ratio `positive:negative`.
    #[must_use]
    pub fn new(positive: u8, negative: u8) -> TrainRatio {
        TrainRatio { positive, negative }
    }

    /// Whether positive events are ever applied (false for 0:1).
    #[must_use]
    pub fn learns(self) -> bool {
        self.positive > 0
    }

    /// Whether negative events are ever applied (false for 1:0).
    #[must_use]
    pub fn unlearns(self) -> bool {
        self.negative > 0
    }
}

impl std::fmt::Display for TrainRatio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.positive, self.negative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_display_and_flags() {
        let r = TrainRatio::new(8, 1);
        assert_eq!(r.to_string(), "8:1");
        assert!(r.learns() && r.unlearns());
        assert!(!TrainRatio::new(0, 1).learns());
        assert!(!TrainRatio::new(1, 0).unlearns());
    }
}

sqip_snapshot::snapshot_struct!(TrainRatio { positive, negative });
