//! The Store Alias Table (SAT), §3.2.

use std::collections::VecDeque;

use sqip_types::{Seq, Ssn};

/// A checkpoint of the full SAT contents (the paper's SAT supports 4
/// checkpoints; the simulator does not bound how many you take).
#[derive(Debug, Clone)]
pub struct SatCheckpoint {
    entries: Vec<Ssn>,
}

/// The untagged table mapping each partial store PC to the SSN of the
/// youngest in-flight (renamed) instance of that store.
///
/// Like a register alias table, the SAT is written at rename and must be
/// repaired when renamed-but-squashed stores are flushed. Repair is for
/// performance only — a stale SAT entry merely degrades prediction — but we
/// model it faithfully with a write log ([`Sat::rollback_younger`])
/// and with whole-table checkpoints ([`Sat::checkpoint`] /
/// [`Sat::restore`]), the two mechanisms the paper names.
///
/// # Example
///
/// ```
/// use sqip_predictors::Sat;
/// use sqip_types::{Seq, Ssn};
///
/// let mut sat = Sat::new(256);
/// sat.update(0x17, Ssn::new(34), Seq(100));
/// assert_eq!(sat.lookup(0x17), Ssn::new(34));
/// sat.rollback_younger(Seq(100)); // squash the store that wrote it
/// assert_eq!(sat.lookup(0x17), Ssn::NONE);
/// ```
#[derive(Debug, Clone)]
pub struct Sat {
    entries: Vec<Ssn>,
    /// Write log for flush repair: (sequence of writer, index, old value).
    /// Kept in writer order (appends at rename, rollback pops the back),
    /// so commit-time pruning is an O(1)-per-call front check rather than
    /// a scan — `prune_log` runs for every retiring instruction.
    log: VecDeque<(Seq, usize, Ssn)>,
}

impl Sat {
    /// Builds a SAT with `entries` slots (256 in the paper, indexed by the
    /// 8-bit partial store PC).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Sat {
        assert!(entries.is_power_of_two(), "SAT size must be a power of two");
        Sat {
            entries: vec![Ssn::NONE; entries],
            log: VecDeque::new(),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The SAT always has slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Records that the store at `partial_pc` renamed as `ssn` (writer's
    /// fetch sequence recorded for flush repair).
    pub fn update(&mut self, partial_pc: u64, ssn: Ssn, writer: Seq) {
        let idx = self.index(partial_pc);
        self.log.push_back((writer, idx, self.entries[idx]));
        self.entries[idx] = ssn;
    }

    /// The SSN of the youngest renamed instance of the store with this
    /// partial PC ([`Ssn::NONE`] if none).
    #[must_use]
    pub fn lookup(&self, partial_pc: u64) -> Ssn {
        self.entries[self.index(partial_pc)]
    }

    /// Undoes, youngest-first, every write made by instructions with
    /// sequence `>= squash_from` (mis-forwarding flush repair).
    pub fn rollback_younger(&mut self, squash_from: Seq) {
        while let Some(&(seq, idx, old)) = self.log.back() {
            if seq.is_older_than(squash_from) {
                break;
            }
            self.entries[idx] = old;
            self.log.pop_back();
        }
    }

    /// Drops log entries for stores at or older than `committed` — their
    /// writes can no longer be squashed. Call periodically (e.g. at commit)
    /// to keep the log bounded.
    pub fn prune_log(&mut self, committed: Seq) {
        while self
            .log
            .front()
            .is_some_and(|(seq, _, _)| seq.is_older_than(committed.next()))
        {
            self.log.pop_front();
        }
    }

    /// Takes a full-contents checkpoint.
    #[must_use]
    pub fn checkpoint(&self) -> SatCheckpoint {
        SatCheckpoint {
            entries: self.entries.clone(),
        }
    }

    /// Restores a checkpoint (discards the write log, which the checkpoint
    /// supersedes).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint came from a SAT of a different size.
    pub fn restore(&mut self, checkpoint: &SatCheckpoint) {
        assert_eq!(
            checkpoint.entries.len(),
            self.entries.len(),
            "checkpoint size mismatch"
        );
        self.entries.clone_from(&checkpoint.entries);
        self.log.clear();
    }

    /// Clears every entry and the log (SSN wrap-around drain).
    pub fn clear(&mut self) {
        self.entries.fill(Ssn::NONE);
        self.log.clear();
    }

    /// Current log length (diagnostics; bounded by in-flight stores when
    /// `prune_log` is used).
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    fn index(&self, partial_pc: u64) -> usize {
        (partial_pc as usize) & (self.entries.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_then_lookup() {
        let mut sat = Sat::new(256);
        sat.update(5, Ssn::new(18), Seq(1));
        assert_eq!(sat.lookup(5), Ssn::new(18));
        assert_eq!(sat.lookup(6), Ssn::NONE);
    }

    #[test]
    fn youngest_instance_wins() {
        let mut sat = Sat::new(256);
        sat.update(5, Ssn::new(18), Seq(1));
        sat.update(5, Ssn::new(34), Seq(9));
        assert_eq!(sat.lookup(5), Ssn::new(34));
    }

    #[test]
    fn rollback_restores_older_instance() {
        let mut sat = Sat::new(256);
        sat.update(5, Ssn::new(18), Seq(1));
        sat.update(5, Ssn::new(34), Seq(9));
        sat.update(7, Ssn::new(35), Seq(10));
        sat.rollback_younger(Seq(9));
        assert_eq!(sat.lookup(5), Ssn::new(18), "squashed write undone");
        assert_eq!(sat.lookup(7), Ssn::NONE, "younger write also undone");
    }

    #[test]
    fn rollback_is_exact_at_boundary() {
        let mut sat = Sat::new(256);
        sat.update(1, Ssn::new(10), Seq(5));
        sat.rollback_younger(Seq(6));
        assert_eq!(sat.lookup(1), Ssn::new(10), "older write survives");
        sat.rollback_younger(Seq(5));
        assert_eq!(sat.lookup(1), Ssn::NONE, "boundary write squashed");
    }

    #[test]
    fn prune_bounds_log() {
        let mut sat = Sat::new(256);
        for i in 0..100 {
            sat.update(i % 8, Ssn::new(i + 1), Seq(i));
        }
        assert_eq!(sat.log_len(), 100);
        sat.prune_log(Seq(49));
        assert_eq!(sat.log_len(), 50);
        // Rollback of still-logged writes still works.
        sat.rollback_younger(Seq(50));
        assert_eq!(sat.lookup(50 % 8), Ssn::new(43), "value from seq 42 write");
    }

    #[test]
    fn checkpoint_restore() {
        let mut sat = Sat::new(256);
        sat.update(3, Ssn::new(7), Seq(0));
        let cp = sat.checkpoint();
        sat.update(3, Ssn::new(9), Seq(1));
        sat.update(4, Ssn::new(10), Seq(2));
        sat.restore(&cp);
        assert_eq!(sat.lookup(3), Ssn::new(7));
        assert_eq!(sat.lookup(4), Ssn::NONE);
        assert_eq!(sat.log_len(), 0);
    }

    #[test]
    fn index_wraps_partial_pc() {
        let mut sat = Sat::new(16);
        sat.update(0x13, Ssn::new(1), Seq(0));
        assert_eq!(sat.lookup(0x03), Ssn::new(1), "only low bits index");
    }

    #[test]
    fn clear_resets_everything() {
        let mut sat = Sat::new(256);
        sat.update(1, Ssn::new(2), Seq(0));
        sat.clear();
        assert_eq!(sat.lookup(1), Ssn::NONE);
        assert_eq!(sat.log_len(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Sat::new(100);
    }
}

sqip_snapshot::snapshot_struct!(Sat { entries, log });
