//! The Delay Distance Predictor (DDP), §3.3.

use sqip_types::Pc;

use crate::counter::SatCounter;
use crate::TrainRatio;

use serde::{Deserialize, Serialize};

/// DDP geometry and training parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdpConfig {
    /// Total entries (default 4K, swept with the FSP in Figure 5).
    pub entries: usize,
    /// Set associativity (fixed at 2 in the paper's sweeps).
    pub ways: usize,
    /// Partial tag width in bits.
    pub tag_bits: u32,
    /// Positive:negative training weights (default 4:1; Figure 5 sweeps
    /// 0:1, 1:1, 2:1, 4:1, 8:1 and 1:0).
    pub ratio: TrainRatio,
    /// Counter prediction threshold.
    pub threshold: u8,
    /// Maximum representable delay distance. Distances are stored in
    /// ⌈log2(SQ size)⌉ bits because a delay larger than the SQ is no delay
    /// at all; this is the SQ size (64 by default).
    pub max_distance: u64,
    /// How many training events on an entry before the "current" distance
    /// field is refreshed from the "future" field (8 in the paper).
    pub swap_period: u8,
}

impl Default for DdpConfig {
    fn default() -> DdpConfig {
        DdpConfig {
            entries: 4096,
            ways: 2,
            tag_bits: 8,
            ratio: TrainRatio::new(4, 1),
            threshold: 4,
            max_distance: 64,
            swap_period: 8,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct DdpEntry {
    valid: bool,
    tag: u64,
    counter: SatCounter,
    /// Distance currently used for predictions.
    dist_current: u64,
    /// Distance being re-learned; promoted to `dist_current` every
    /// `swap_period` training events so over-conservative distances decay.
    dist_future: u64,
    events: u8,
    lru: u64,
}

/// The tagged, PC-indexed table mapping each difficult load to the distance
/// (in dynamic stores) to the closest older store that causes its
/// mis-forwardings.
///
/// A load predicted by the DDP is held at issue until the store
/// `SSNren − distance` has committed, converting what would have been a
/// mis-forwarding flush into a bounded delay. The dual distance fields
/// implement the paper's down-training: both are trained with the minimum
/// observed distance, and every eight events the current field is replaced
/// by the future field (which then resets), so distances can shrink as well
/// as grow... or rather, can *grow back* toward no-delay instead of
/// converging monotonically to the most conservative value ever seen.
#[derive(Debug, Clone)]
pub struct Ddp {
    config: DdpConfig,
    sets: Vec<DdpEntry>,
    tick: u64,
}

impl Default for Ddp {
    fn default() -> Ddp {
        Ddp::new(DdpConfig::default())
    }
}

impl Ddp {
    /// Builds a DDP.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry.
    #[must_use]
    pub fn new(config: DdpConfig) -> Ddp {
        assert!(config.ways > 0, "DDP must have at least one way");
        let sets = config.entries / config.ways;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "DDP set count must be a power of two (got {sets})"
        );
        let empty = DdpEntry {
            valid: false,
            tag: 0,
            counter: SatCounter::four_bit(config.threshold),
            dist_current: config.max_distance,
            dist_future: config.max_distance,
            events: 0,
            lru: 0,
        };
        Ddp {
            config,
            sets: vec![empty; config.entries],
            tick: 0,
        }
    }

    /// The configured parameters.
    #[must_use]
    pub fn config(&self) -> DdpConfig {
        self.config
    }

    /// The delay distance for this load: `Some(d)` if the load should not
    /// execute until the store `d` dynamic stores before it has committed,
    /// `None` for no effective delay (no entry or low confidence).
    #[must_use]
    pub fn predict(&self, load_pc: Pc) -> Option<u64> {
        let (base, tag) = self.slice(load_pc);
        self.sets[base..base + self.config.ways]
            .iter()
            .find(|e| e.valid && e.tag == tag && e.counter.predicts())
            .map(|e| e.dist_current)
    }

    /// Trains on a *wrong forwarding prediction* at this load's commit:
    /// raises confidence, and — when the caller supplies a corroborated
    /// distance (the load flushed, was forcibly delayed, or named the right
    /// store PC but the wrong instance) — learns `observed_distance` if
    /// smaller than what is known. Wrong predictions without distance
    /// evidence (`None`) still raise confidence and tick the entry, but a
    /// confident entry whose distance fields sit at `max_distance` is an
    /// effective no-delay, so lossy-SSBF aliasing noise stays harmless.
    pub fn learn(&mut self, load_pc: Pc, observed_distance: Option<u64>) {
        if !self.config.ratio.learns() {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let cfg = self.config;
        let (base, tag) = self.slice(load_pc);
        let set = &mut self.sets[base..base + cfg.ways];
        let dist = observed_distance
            .unwrap_or(cfg.max_distance)
            .min(cfg.max_distance);

        if let Some(e) = set.iter_mut().find(|e| e.valid && e.tag == tag) {
            e.counter.strengthen(cfg.ratio.positive);
            // "a delay distance is learned only if it is smaller than the
            // current known delay"
            e.dist_current = e.dist_current.min(dist);
            e.dist_future = e.dist_future.min(dist);
            e.lru = tick;
            Self::bump_events(e, cfg.swap_period, cfg.max_distance);
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| (e.valid, !e.counter.is_zero(), e.lru))
            .expect("at least one way");
        victim.valid = true;
        victim.tag = tag;
        victim.counter = SatCounter::four_bit(cfg.threshold);
        victim.counter.strengthen(cfg.ratio.positive);
        victim.dist_current = dist;
        victim.dist_future = dist;
        victim.events = 0;
        victim.lru = tick;
    }

    /// Trains on a *correct forwarding prediction* at this load's commit:
    /// lowers confidence (no need to delay a load we can forward-predict).
    pub fn unlearn(&mut self, load_pc: Pc) {
        let cfg = self.config;
        let (base, tag) = self.slice(load_pc);
        if let Some(e) = self.sets[base..base + cfg.ways]
            .iter_mut()
            .find(|e| e.valid && e.tag == tag)
        {
            e.counter.weaken(cfg.ratio.negative);
            Self::bump_events(e, cfg.swap_period, cfg.max_distance);
        }
    }

    /// Clears the table (SSN wrap-around drain).
    pub fn clear(&mut self) {
        for e in &mut self.sets {
            e.valid = false;
        }
    }

    /// Number of valid entries (diagnostics).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().filter(|e| e.valid).count()
    }

    fn bump_events(e: &mut DdpEntry, period: u8, max_distance: u64) {
        e.events += 1;
        if e.events >= period {
            e.events = 0;
            e.dist_current = e.dist_future;
            e.dist_future = max_distance;
        }
    }

    fn slice(&self, pc: Pc) -> (usize, u64) {
        let sets = self.config.entries / self.config.ways;
        let set = pc.table_index(sets);
        (
            set * self.config.ways,
            pc.partial_tag(sets, self.config.tag_bits),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ddp {
        Ddp::new(DdpConfig {
            entries: 32,
            ways: 2,
            ..DdpConfig::default()
        })
    }

    #[test]
    fn empty_table_never_delays() {
        assert_eq!(Ddp::default().predict(Pc::new(0x40)), None);
    }

    #[test]
    fn learn_reaches_threshold_then_predicts() {
        let mut ddp = small();
        let ld = Pc::new(0x80);
        ddp.learn(ld, Some(10));
        assert_eq!(
            ddp.predict(ld),
            Some(10),
            "4:1 ratio reaches threshold at once"
        );
    }

    #[test]
    fn distance_only_shrinks_within_a_window() {
        let mut ddp = small();
        let ld = Pc::new(0x80);
        ddp.learn(ld, Some(10));
        ddp.learn(ld, Some(20));
        assert_eq!(ddp.predict(ld), Some(10), "larger distance is not learned");
        ddp.learn(ld, Some(4));
        assert_eq!(ddp.predict(ld), Some(4), "smaller distance is learned");
    }

    #[test]
    fn future_field_lets_distance_grow_back() {
        let mut ddp = small();
        let ld = Pc::new(0x80);
        ddp.learn(ld, Some(2)); // a one-off close store
                                // Two full 8-event windows at distance 20. The first swap still
                                // publishes 2 (the future field saw the early event); the second
                                // window's future field only ever sees 20, so the stale
                                // over-conservative distance is discarded at the second swap.
        for _ in 0..16 {
            ddp.learn(ld, Some(20));
        }
        assert_eq!(
            ddp.predict(ld),
            Some(20),
            "swap discarded the stale over-conservative distance"
        );
    }

    #[test]
    fn unlearn_lowers_confidence() {
        let mut ddp = small();
        let ld = Pc::new(0x80);
        ddp.learn(ld, Some(10)); // counter = 4 (threshold)
        ddp.unlearn(ld);
        assert_eq!(
            ddp.predict(ld),
            None,
            "one correct prediction drops below threshold"
        );
        ddp.learn(ld, Some(10));
        assert!(ddp.predict(ld).is_some());
    }

    #[test]
    fn zero_one_ratio_never_learns() {
        let mut ddp = Ddp::new(DdpConfig {
            entries: 32,
            ways: 2,
            ratio: TrainRatio::new(0, 1),
            ..DdpConfig::default()
        });
        let ld = Pc::new(0x80);
        for _ in 0..100 {
            ddp.learn(ld, Some(5));
        }
        assert_eq!(
            ddp.predict(ld),
            None,
            "0:1 degenerates to the raw Fwd configuration"
        );
        assert_eq!(ddp.occupancy(), 0);
    }

    #[test]
    fn one_zero_ratio_never_unlearns() {
        let mut ddp = Ddp::new(DdpConfig {
            entries: 32,
            ways: 2,
            ratio: TrainRatio::new(1, 0),
            threshold: 1,
            ..DdpConfig::default()
        });
        let ld = Pc::new(0x80);
        ddp.learn(ld, Some(5));
        for _ in 0..100 {
            ddp.unlearn(ld);
        }
        // The *decision* to delay never un-learns (counter never decays),
        // but the distance itself decays toward max_distance (≈ no
        // effective delay) through the future-field swaps, since only
        // wrong predictions carry distance information.
        assert_eq!(
            ddp.predict(ld),
            Some(64),
            "still predicts delay, distance decayed"
        );
        ddp.learn(ld, Some(5));
        assert_eq!(
            ddp.predict(ld),
            Some(5),
            "a new wrong prediction re-learns at once"
        );
    }

    #[test]
    fn distance_saturates_at_sq_size() {
        let mut ddp = small();
        let ld = Pc::new(0x80);
        ddp.learn(ld, Some(1000));
        assert_eq!(ddp.predict(ld), Some(64), "distances cap at max_distance");
    }

    #[test]
    fn tag_mismatch_misses() {
        let mut ddp = small();
        let sets = 16;
        let a = Pc::from_index(3);
        let b = Pc::from_index(3 + sets);
        ddp.learn(a, Some(10));
        assert_eq!(ddp.predict(b), None);
    }

    #[test]
    fn clear_empties() {
        let mut ddp = small();
        ddp.learn(Pc::new(0x80), Some(10));
        ddp.clear();
        assert_eq!(ddp.occupancy(), 0);
    }
}

sqip_snapshot::snapshot_struct!(DdpConfig {
    entries,
    ways,
    tag_bits,
    ratio,
    threshold,
    max_distance,
    swap_period,
});
sqip_snapshot::snapshot_struct!(DdpEntry {
    valid,
    tag,
    counter,
    dist_current,
    dist_future,
    events,
    lru,
});
sqip_snapshot::snapshot_struct!(Ddp { config, sets, tick });
