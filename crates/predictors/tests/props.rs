//! Property-based tests for the prediction structures.

use proptest::prelude::*;
use sqip_predictors::{Sat, Ssbf};
use sqip_types::{Addr, DataSize, Pc, Seq, Ssn};

proptest! {
    /// Rolling the SAT back to a squash point must yield exactly the state
    /// produced by replaying only the older writes.
    #[test]
    fn sat_rollback_equals_replay_of_older_writes(
        writes in proptest::collection::vec((0u64..32, 1u64..1000), 1..40),
        squash_sel in any::<proptest::sample::Index>(),
    ) {
        let squash = squash_sel.index(writes.len());
        let mut sat = Sat::new(32);
        for (seq, &(pc, ssn)) in writes.iter().enumerate() {
            sat.update(pc, Ssn::new(ssn), Seq(seq as u64));
        }
        sat.rollback_younger(Seq(squash as u64));

        let mut reference = Sat::new(32);
        for (seq, &(pc, ssn)) in writes.iter().take(squash).enumerate() {
            reference.update(pc, Ssn::new(ssn), Seq(seq as u64));
        }
        for pc in 0..32u64 {
            prop_assert_eq!(sat.lookup(pc), reference.lookup(pc), "pc {}", pc);
        }
    }

    /// The SSBF is a conservative filter: for the true last writer of any
    /// byte, the filter's answer is never older than that writer.
    #[test]
    fn ssbf_never_understates(
        stores in proptest::collection::vec((0u64..512, 0usize..4), 1..60),
        probe in 0u64..512,
    ) {
        let sizes = [DataSize::Byte, DataSize::Half, DataSize::Word, DataSize::Quad];
        let mut ssbf = Ssbf::new(256);
        let mut true_last: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (i, &(addr, szi)) in stores.iter().enumerate() {
            let ssn = i as u64 + 1;
            let span = Addr::new(addr).span(sizes[szi]);
            ssbf.update(span, Ssn::new(ssn));
            for b in span.byte_addrs() {
                true_last.insert(b.0, ssn);
            }
        }
        let got = ssbf.newest(Addr::new(probe).span(DataSize::Byte));
        let truth = true_last.get(&probe).copied().unwrap_or(0);
        prop_assert!(got.0 >= truth, "filter {} vs truth {}", got.0, truth);
    }

    /// SAT lookups only depend on the low index bits of the partial PC.
    #[test]
    fn sat_indexing_is_modular(pc in 0u64..4096, ssn in 1u64..1000) {
        let mut sat = Sat::new(256);
        sat.update(pc, Ssn::new(ssn), Seq(0));
        prop_assert_eq!(sat.lookup(pc % 256), Ssn::new(ssn));
    }

    /// An FSP never predicts more stores than its associativity.
    #[test]
    fn fsp_prediction_bounded_by_ways(
        deps in proptest::collection::vec((0u64..64, 0u64..256), 1..30),
    ) {
        use sqip_predictors::{Fsp, FspConfig};
        let mut fsp = Fsp::new(FspConfig { entries: 64, ways: 2, ..FspConfig::default() });
        for &(ld, st) in &deps {
            fsp.learn(Pc::from_index(ld as usize), st);
        }
        for &(ld, _) in &deps {
            prop_assert!(fsp.predict(Pc::from_index(ld as usize)).len() <= 2);
        }
    }
}
