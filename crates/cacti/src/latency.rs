//! Latency models: SQ (associative / indexed), cache bank, TLB.

/// Store queue geometry for latency queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SqGeometry {
    /// Number of entries.
    pub entries: usize,
    /// Load (search/read) ports. Both designs additionally have one
    /// indexed write port (store execute) and one indexed read port (store
    /// commit), which are included in the port-loading constants.
    pub load_ports: usize,
    /// `true` for the paper's speculative indexed design (no CAM).
    pub indexed: bool,
}

impl SqGeometry {
    /// A conventional fully-associative SQ.
    #[must_use]
    pub fn associative(entries: usize, load_ports: usize) -> SqGeometry {
        SqGeometry {
            entries,
            load_ports,
            indexed: false,
        }
    }

    /// The paper's indexed SQ.
    #[must_use]
    pub fn indexed(entries: usize, load_ports: usize) -> SqGeometry {
        SqGeometry {
            entries,
            load_ports,
            indexed: true,
        }
    }
}

/// Data cache bank geometry (for Table 2's D$ rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheBankGeometry {
    /// Bank capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Read ports.
    pub ports: usize,
}

/// TLB geometry (for Table 2's TLB row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbGeometry {
    /// Entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Ports.
    pub ports: usize,
}

/// Technology parameters and calibrated RC constants.
///
/// Defaults model the paper's 90nm, 1.1V, 3GHz design point. All time
/// constants are in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TechParams {
    /// Clock frequency in GHz (cycle conversions).
    pub freq_ghz: f64,
    /// Decoder delay per doubling of entries.
    pub t_dec_per_level: f64,
    /// RAM bitline delay per entry on the line.
    pub t_bit_per_entry: f64,
    /// RAM fixed overhead (sense amp, wordline, output driver).
    pub t_ram_fixed: f64,
    /// CAM matchline delay per entry (includes the age/priority wired-OR
    /// loading; the paper's estimate *excludes* explicit age logic).
    pub t_cam_per_entry: f64,
    /// CAM delay per tag bit.
    pub t_cam_per_bit: f64,
    /// CAM fixed overhead (precharge, match sense).
    pub t_cam_fixed: f64,
    /// Relative capacitance added per extra port.
    pub port_factor: f64,
    /// CAM tag width in bits (12 untranslated page-offset bits).
    pub cam_bits: usize,
}

impl Default for TechParams {
    fn default() -> TechParams {
        TechParams {
            freq_ghz: 3.0,
            t_dec_per_level: 0.0204,
            t_bit_per_entry: 0.000522,
            t_ram_fixed: 0.434,
            t_cam_per_entry: 0.000261,
            t_cam_per_bit: 0.006,
            t_cam_fixed: 0.068,
            port_factor: 0.065,
            cam_bits: 12,
        }
    }
}

impl TechParams {
    fn port_scale(&self, ports: usize) -> f64 {
        1.0 + self.port_factor * ports.saturating_sub(1) as f64
    }

    fn ram_read_ns(&self, entries: usize, ports: usize) -> f64 {
        let levels = (entries.max(2) as f64).log2();
        let scale = self.port_scale(ports);
        self.t_ram_fixed
            + self.t_dec_per_level * levels * scale
            + self.t_bit_per_entry * entries as f64 * scale
    }

    fn cam_search_ns(&self, entries: usize, ports: usize) -> f64 {
        let scale = self.port_scale(ports);
        self.t_cam_fixed
            + self.t_cam_per_bit * self.cam_bits as f64
            + self.t_cam_per_entry * entries as f64 * scale
            // The matchline result must traverse a log-depth wired-OR /
            // select tree before it can drive the data array's wordline.
            + 0.1675 * (entries.max(2) as f64).log2() * scale
    }

    /// Load latency of a store queue, in nanoseconds.
    ///
    /// Associative: CAM search (partial-address matchlines) followed by the
    /// selected entry's data read. Indexed: decoder + data read only.
    #[must_use]
    pub fn sq_latency_ns(&self, geometry: SqGeometry) -> f64 {
        self.sq_latency_banked_ns(geometry, 1)
    }

    /// Indexed SQ latency with the data array split into `banks` equal
    /// banks (§4.2: "Indexed SQ latency can be reduced by banking; the age
    /// logic makes banking an associative SQ more difficult"). Each bank
    /// has `entries/banks` rows on its bitlines; a small constant charges
    /// the bank-select mux. Associative geometries ignore `banks`.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or exceeds the entry count.
    #[must_use]
    pub fn sq_latency_banked_ns(&self, geometry: SqGeometry, banks: usize) -> f64 {
        assert!(banks > 0 && banks <= geometry.entries, "bad bank count");
        if geometry.indexed && banks > 1 {
            let rows = geometry.entries / banks;
            return self.ram_read_ns(rows.max(2), geometry.load_ports) + 0.03;
        }
        let ram = self.ram_read_ns(geometry.entries, geometry.load_ports);
        if geometry.indexed {
            ram
        } else {
            // The CAM search replaces the decoder but is much slower; the
            // data read overlaps substantially with match resolution, so
            // only a fraction of the RAM's fixed path remains exposed.
            self.cam_search_ns(geometry.entries, geometry.load_ports) + self.t_ram_fixed * 0.35
        }
    }

    /// Load latency in cycles at the configured frequency.
    #[must_use]
    pub fn sq_cycles(&self, geometry: SqGeometry) -> u64 {
        to_cycles(self.sq_latency_ns(geometry), self.freq_ghz)
    }

    /// Access latency of one cache bank, in nanoseconds.
    ///
    /// Cache arrays are an order of magnitude wider than SQ entries, so
    /// extra ports load them much more heavily (separate port factor).
    #[must_use]
    pub fn cache_bank_latency_ns(&self, geometry: CacheBankGeometry) -> f64 {
        let rows = geometry.capacity_bytes / (geometry.ways * geometry.line_bytes);
        let scale = 1.0 + 0.55 * geometry.ports.saturating_sub(1) as f64;
        let levels = (rows.max(2) as f64).log2();
        self.t_ram_fixed
            + (self.t_dec_per_level * levels + self.t_bit_per_entry * rows as f64) * scale
            + 0.238
            + 0.012 * (geometry.ways as f64).log2()
    }

    /// Cache bank latency in cycles.
    #[must_use]
    pub fn cache_bank_cycles(&self, geometry: CacheBankGeometry) -> u64 {
        to_cycles(self.cache_bank_latency_ns(geometry), self.freq_ghz)
    }

    /// TLB access latency in nanoseconds (set-associative tag match).
    #[must_use]
    pub fn tlb_latency_ns(&self, geometry: TlbGeometry) -> f64 {
        let rows = (geometry.entries / geometry.ways).max(2);
        let scale = 1.0 + 0.55 * geometry.ports.saturating_sub(1) as f64;
        let levels = (rows as f64).log2();
        self.t_ram_fixed
            + (self.t_dec_per_level * levels + self.t_bit_per_entry * rows as f64) * scale
            + 0.116
            + 0.012 * (geometry.ways as f64).log2()
    }

    /// TLB latency in cycles.
    #[must_use]
    pub fn tlb_cycles(&self, geometry: TlbGeometry) -> u64 {
        to_cycles(self.tlb_latency_ns(geometry), self.freq_ghz)
    }
}

fn to_cycles(ns: f64, freq_ghz: f64) -> u64 {
    // Round to the containing cycle, with a small margin absorbed by
    // clock-edge slack (matches the paper's rounding of e.g. 1.34ns -> 4
    // cycles at 3GHz).
    (ns * freq_ghz - 0.06).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(got: f64, want: f64, tol: f64) -> bool {
        (got - want).abs() <= tol
    }

    #[test]
    fn indexed_sq_matches_paper_within_tolerance() {
        let t = TechParams::default();
        // Paper (2 load ports): 0.53, 0.55, 0.60, 0.71, 0.75 ns.
        let paper = [(16, 0.53), (32, 0.55), (64, 0.60), (128, 0.71), (256, 0.75)];
        for (entries, want) in paper {
            let got = t.sq_latency_ns(SqGeometry::indexed(entries, 2));
            assert!(close(got, want, 0.08), "{entries}: {got:.3} vs {want}");
        }
    }

    #[test]
    fn associative_sq_matches_paper_within_tolerance() {
        let t = TechParams::default();
        // Paper (2 load ports): 1.01, 1.14, 1.38, 1.55, 1.79 ns.
        let paper = [(16, 1.01), (32, 1.14), (64, 1.38), (128, 1.55), (256, 1.79)];
        for (entries, want) in paper {
            let got = t.sq_latency_ns(SqGeometry::associative(entries, 2));
            assert!(close(got, want, 0.12), "{entries}: {got:.3} vs {want}");
        }
    }

    #[test]
    fn cache_bank_anchors() {
        let t = TechParams::default();
        let bank = |cap, ports| CacheBankGeometry {
            capacity_bytes: cap,
            ways: 2,
            line_bytes: 64,
            ports,
        };
        // Paper: 8KB 0.84/0.92, 32KB 1.00/1.15 ns (1 / 2 ports).
        assert!(close(
            t.cache_bank_latency_ns(bank(8 * 1024, 1)),
            0.84,
            0.12
        ));
        assert!(close(
            t.cache_bank_latency_ns(bank(32 * 1024, 1)),
            1.00,
            0.12
        ));
        assert!(close(
            t.cache_bank_latency_ns(bank(32 * 1024, 2)),
            1.15,
            0.15
        ));
        // The paper's headline: a 32KB bank is 3 cycles at 3GHz.
        assert_eq!(t.cache_bank_cycles(bank(32 * 1024, 1)), 3);
    }

    #[test]
    fn tlb_anchor() {
        let t = TechParams::default();
        let tlb = |ports| TlbGeometry {
            entries: 32,
            ways: 4,
            ports,
        };
        // Paper: 0.64 (2 cycles) / 0.70 (3 cycles).
        assert!(close(t.tlb_latency_ns(tlb(1)), 0.64, 0.12));
        assert!(t.tlb_cycles(tlb(1)) <= 3);
    }

    #[test]
    fn headline_comparison_64_entry_2_port() {
        // §1/§4.2: associative 1.38ns (5 cycles) vs indexed 0.60ns (2
        // cycles) for the paper's 64-entry, 2-load-port configuration.
        let t = TechParams::default();
        let a = t.sq_cycles(SqGeometry::associative(64, 2));
        let i = t.sq_cycles(SqGeometry::indexed(64, 2));
        assert!(a >= 4, "associative must be clearly slower, got {a}");
        assert_eq!(i, 2);
    }

    #[test]
    fn banking_reduces_indexed_latency_at_scale() {
        let t = TechParams::default();
        let g = SqGeometry::indexed(256, 2);
        let flat = t.sq_latency_banked_ns(g, 1);
        let banked = t.sq_latency_banked_ns(g, 4);
        assert!(
            banked < flat,
            "4-way banking must shorten the bitlines: {banked:.3} vs {flat:.3}"
        );
        // Banking never applies to the associative design (age logic).
        let a = SqGeometry::associative(256, 2);
        assert_eq!(t.sq_latency_banked_ns(a, 4), t.sq_latency_ns(a));
    }

    #[test]
    #[should_panic(expected = "bad bank count")]
    fn zero_banks_rejected() {
        let t = TechParams::default();
        let _ = t.sq_latency_banked_ns(SqGeometry::indexed(64, 2), 0);
    }

    #[test]
    fn cycle_conversion_rounds_up() {
        assert_eq!(to_cycles(1.0, 3.0), 3);
        assert_eq!(to_cycles(1.01, 3.0), 3, "edge slack absorbs 2% over");
        assert_eq!(to_cycles(1.1, 3.0), 4);
        assert_eq!(to_cycles(0.1, 3.0), 1, "clamps to at least one cycle");
    }
}
