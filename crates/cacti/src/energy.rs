//! Per-access energy model (the §4.2 energy claim).

use crate::latency::SqGeometry;

/// Per-access energy of a store queue load access, in picojoules
/// (arbitrary but internally consistent units).
///
/// The associative design pays for precharging and evaluating a matchline
/// per entry (12 bits wide each) on top of reading the selected data entry;
/// the indexed design only decodes and reads. The constants are chosen so
/// the 64-entry, 2-load-port comparison lands at the paper's "about 30%
/// lower" figure — the *structure* (CAM energy linear in entries, RAM
/// energy dominated by the wide data array) is what the model contributes.
#[must_use]
pub fn sq_energy_pj(geometry: SqGeometry) -> f64 {
    let ports = 1.0 + 0.3 * geometry.load_ports.saturating_sub(1) as f64;
    let entries = geometry.entries as f64;
    // Data array read: 108-bit entry; bitline energy grows with the
    // number of entries sharing the line, decoder with its depth.
    let data_bits = 108.0;
    let ram = (0.9 + 0.004 * data_bits * entries.log2() + 0.0035 * entries) * ports;
    if geometry.indexed {
        ram
    } else {
        // 12-bit matchlines, one per entry, all precharged every search.
        let cam_bits = 12.0;
        let cam = 0.00208 * cam_bits * entries * ports;
        ram + cam
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_is_about_30_percent_lower_at_the_papers_point() {
        // §4.2: "for 64 entries and 2 load ports, the per-access energy of
        // an indexed SQ is about 30% lower than that of an associative SQ".
        let a = sq_energy_pj(SqGeometry::associative(64, 2));
        let i = sq_energy_pj(SqGeometry::indexed(64, 2));
        let saving = 1.0 - i / a;
        assert!(
            (saving - 0.30).abs() < 0.05,
            "expected ~30% saving, got {:.1}%",
            saving * 100.0
        );
    }

    #[test]
    fn energy_grows_with_entries_and_ports() {
        for indexed in [false, true] {
            let g = |entries, ports| SqGeometry {
                entries,
                load_ports: ports,
                indexed,
            };
            assert!(sq_energy_pj(g(128, 2)) > sq_energy_pj(g(64, 2)));
            assert!(sq_energy_pj(g(64, 2)) > sq_energy_pj(g(64, 1)));
        }
    }

    #[test]
    fn cam_energy_share_grows_with_capacity() {
        // The CAM term is linear in entries while the RAM term is mostly
        // logarithmic, so the associative premium must widen.
        let premium = |entries| {
            sq_energy_pj(SqGeometry::associative(entries, 2))
                / sq_energy_pj(SqGeometry::indexed(entries, 2))
        };
        assert!(premium(256) > premium(64));
        assert!(premium(64) > premium(16));
    }
}
