//! A first-order analytic timing and energy model for store queues, cache
//! banks and TLBs — the reproduction's substitute for CACTI 3.2, used to
//! regenerate the paper's Table 2 (§4.2).
//!
//! # Model
//!
//! The model uses CACTI's structural decomposition with first-order RC
//! delay terms:
//!
//! * **decoder** — log-depth: `d₁·log2(entries)`;
//! * **bitline/matchline** — capacitance linear in the number of entries
//!   hanging off the line: `d₂·entries`, scaled by a per-extra-port factor
//!   (each port adds transistors and wire length);
//! * **sense amp / drivers / compare** — constant.
//!
//! An **associative** SQ access is a CAM search (12-bit partial-address
//! matchlines across all entries) followed by a data-array read; an
//! **indexed** SQ access is a plain RAM read. The constants are calibrated
//! against the anchor points the paper publishes (90nm, 1.1V, 3GHz) —
//! absolute values are approximate by construction, but the *trends* (how
//! associative search scales vs indexed access with capacity and ports)
//! come from the model's structure, not from the calibration.
//!
//! # Example
//!
//! ```
//! use sqip_cacti::{SqGeometry, TechParams};
//!
//! let tech = TechParams::default(); // 90nm, 3GHz
//! let assoc = SqGeometry::associative(64, 2);
//! let index = SqGeometry::indexed(64, 2);
//! assert!(tech.sq_latency_ns(assoc) > tech.sq_latency_ns(index));
//! assert_eq!(tech.sq_cycles(index), 2); // matches Table 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod latency;

pub use energy::sq_energy_pj;
pub use latency::{CacheBankGeometry, SqGeometry, TechParams, TlbGeometry};

/// One row of the regenerated Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// SQ entries.
    pub entries: usize,
    /// Associative latency, 1 load port (ns, cycles).
    pub assoc_1p: (f64, u64),
    /// Indexed latency, 1 load port.
    pub index_1p: (f64, u64),
    /// Associative latency, 2 load ports.
    pub assoc_2p: (f64, u64),
    /// Indexed latency, 2 load ports.
    pub index_2p: (f64, u64),
}

/// Regenerates the SQ section of Table 2 for the standard capacities.
#[must_use]
pub fn table2_sq_rows(tech: &TechParams) -> Vec<Table2Row> {
    [16, 32, 64, 128, 256]
        .into_iter()
        .map(|entries| {
            let row =
                |geometry: SqGeometry| (tech.sq_latency_ns(geometry), tech.sq_cycles(geometry));
            Table2Row {
                entries,
                assoc_1p: row(SqGeometry::associative(entries, 1)),
                index_1p: row(SqGeometry::indexed(entries, 1)),
                assoc_2p: row(SqGeometry::associative(entries, 2)),
                index_2p: row(SqGeometry::indexed(entries, 2)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_five_capacities() {
        let rows = table2_sq_rows(&TechParams::default());
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].entries, 16);
        assert_eq!(rows[4].entries, 256);
    }

    #[test]
    fn indexed_always_beats_associative() {
        for row in table2_sq_rows(&TechParams::default()) {
            assert!(row.index_1p.0 < row.assoc_1p.0, "{row:?}");
            assert!(row.index_2p.0 < row.assoc_2p.0, "{row:?}");
        }
    }

    #[test]
    fn latency_grows_with_capacity_and_ports() {
        let rows = table2_sq_rows(&TechParams::default());
        for pair in rows.windows(2) {
            assert!(pair[1].assoc_2p.0 > pair[0].assoc_2p.0);
            assert!(pair[1].index_2p.0 > pair[0].index_2p.0);
        }
        for row in &rows {
            assert!(row.assoc_2p.0 > row.assoc_1p.0);
            assert!(row.index_2p.0 >= row.index_1p.0);
        }
    }

    /// Every cycle count must be within ±1 cycle of the paper's Table 2.
    #[test]
    fn cycles_track_the_papers_anchors() {
        let paper: [(usize, u64, u64, u64, u64); 5] = [
            // entries, assoc 1p, index 1p, assoc 2p, index 2p
            (16, 3, 2, 3, 2),
            (32, 4, 2, 4, 2),
            (64, 4, 2, 5, 2),
            (128, 5, 2, 5, 3),
            (256, 6, 3, 6, 3),
        ];
        for ((entries, a1, i1, a2, i2), row) in paper
            .into_iter()
            .zip(table2_sq_rows(&TechParams::default()))
        {
            assert_eq!(row.entries, entries);
            for (got, want, what) in [
                (row.assoc_1p.1, a1, "assoc 1p"),
                (row.index_1p.1, i1, "index 1p"),
                (row.assoc_2p.1, a2, "assoc 2p"),
                (row.index_2p.1, i2, "index 2p"),
            ] {
                assert!(
                    got.abs_diff(want) <= 1,
                    "{entries}-entry {what}: {got} cycles vs paper {want}"
                );
            }
        }
    }
}
